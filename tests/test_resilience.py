"""The resilience layer: SEC-DED codes, the recovery ladder, degradation.

Covers the protection wrapper rung by rung (correct, reread, reload,
trap, retire), the graceful-degradation gap between NSF line retirement
and segmented frame retirement, machine-check pricing, the scheduler
watchdog/wait-graph, bounded backing-store retry, and the campaign's
zero-silent-corruption contract (property-based).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    NSF_COSTS,
    BackingStore,
    NamedStateRegisterFile,
    ProtectedRegisterFile,
    RetryingBackingStore,
    SegmentedRegisterFile,
    secded_check,
    secded_encode,
)
from repro.core.faults import FAULT_KINDS, FaultyRegisterFile
from repro.cpu.traps import MachineCheckTrapUnit
from repro.errors import (
    BackingStoreFaultError,
    CapacityError,
    DeadlockError,
    MachineCheckError,
)
from repro.evalx.resilience import run_campaign, run_single
from repro.runtime.scheduler import ThreadMachine
from repro.workloads import get_workload


# -- the SEC-DED codec ------------------------------------------------------


class TestSecded:
    def test_roundtrip_ok(self):
        for value in (0, 1, -1, 7, 1234567, -987654321, 2 ** 62):
            assert secded_check(value, secded_encode(value)) == ("ok", value)

    def test_single_bit_corrected(self):
        value = 0x1234_5678
        code = secded_encode(value)
        for bit in (0, 5, 31, 63):
            flipped = (value & (2 ** 64 - 1)) ^ (1 << bit)
            flipped = flipped - 2 ** 64 if flipped >= 2 ** 63 else flipped
            status, fixed = secded_check(flipped, code)
            assert status == "corrected"
            assert fixed == value

    def test_double_bit_detected_not_corrected(self):
        value = 41
        code = secded_encode(value)
        status, fixed = secded_check(value ^ 0b101, code)
        assert status == "uncorrectable"
        assert fixed is None

    def test_non_int_values_are_detect_only(self):
        code = secded_encode(2.5)
        assert code[0] == "crc"
        assert secded_check(2.5, code)[0] == "ok"
        assert secded_check(2.75, code)[0] == "uncorrectable"

    def test_bool_not_treated_as_int(self):
        # bool arithmetic would silently "correct" True into 3.
        assert secded_encode(True)[0] == "crc"

    @given(value=st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1),
           bit=st.integers(min_value=0, max_value=63))
    @settings(max_examples=200, deadline=None)
    def test_codec_properties(self, value, bit):
        code = secded_encode(value)
        assert secded_check(value, code) == ("ok", value)
        flipped = ((value & (2 ** 64 - 1)) ^ (1 << bit))
        flipped = flipped - 2 ** 64 if flipped >= 2 ** 63 else flipped
        status, fixed = secded_check(flipped, code)
        if flipped == value:
            assert status == "ok"
        else:
            assert status == "corrected"
            assert fixed == value


# -- the recovery ladder, rung by rung --------------------------------------


def protected(kind, trigger_at, registers=8, level="ecc", trap_unit=None,
              hard_fault_threshold=3):
    inner = NamedStateRegisterFile(num_registers=registers, context_size=8,
                                   line_size=1)
    faulty = FaultyRegisterFile(inner, kind, trigger_at=trigger_at)
    return ProtectedRegisterFile(faulty, level=level, trap_unit=trap_unit,
                                 hard_fault_threshold=hard_fault_threshold)


class TestRecoveryLadder:
    def test_rung1_single_bit_corrected_in_place(self):
        model = protected("flip_read_bit", trigger_at=0)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 42)
        value, _ = model.read(0)
        assert value == 42
        assert model.rstats.corrected == 1
        # The scrub write repaired the array: later reads are clean.
        assert model.read(0)[0] == 42
        assert model.rstats.snapshot()["detected"] == 1

    def test_rung2_transient_glitch_gone_on_reread(self):
        model = protected("alias_read", trigger_at=0)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 42)
        value, _ = model.read(0)
        assert value == 42
        assert model.rstats.reread_recoveries == 1
        assert model.rstats.corrected == 0

    def test_rung3_clean_register_reloaded_from_backing(self):
        # Two physical registers force spills, so offset 0 acquires a
        # clean memory copy before the double-bit corruption lands.
        model = protected("flip_clean_bits", trigger_at=0, registers=2)
        cid = model.begin_context()
        model.switch_to(cid)
        for offset in range(4):
            model.write(offset, 100 + offset)
        value, _ = model.read(0)  # demand-reload, then corrupted
        assert value == 100
        assert model.rstats.reload_recoveries == 1
        assert model.inner.injected

    def test_rung4_dirty_uncorrectable_is_a_machine_check(self):
        # corrupt_write stores value+1 while the code was computed from
        # the intent; 3 -> 4 differs in three bits, beyond SEC-DED, and
        # the register was never spilled so no clean copy exists.
        trap_unit = MachineCheckTrapUnit()
        model = protected("corrupt_write", trigger_at=0, trap_unit=trap_unit)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 3)
        with pytest.raises(MachineCheckError) as excinfo:
            model.read(0)
        assert model.rstats.machine_checks == 1
        assert trap_unit.stats.traps == 1
        assert trap_unit.stats.cycles == (
            MachineCheckTrapUnit.ENTRY_INSTRUCTIONS
            + MachineCheckTrapUnit.EXIT_INSTRUCTIONS
        )
        assert trap_unit.log == [excinfo.value]
        assert excinfo.value.cid == cid
        assert excinfo.value.offset == 0

    def test_rung5_repeated_errors_retire_the_line(self):
        model = protected("stuck_line", trigger_at=0, registers=4,
                          hard_fault_threshold=3)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 10)  # even: bit 0 sticks high on every read
        for _ in range(3):
            assert model.read(0)[0] == 10
        assert model.rstats.corrected == 3
        assert model.rstats.lines_retired == 1
        assert model.inner.inner.retired_line_count() == 1
        # The register survived retirement and the fault is gone.
        assert model.read(0)[0] == 10
        assert model.rstats.corrected == 3

    def test_parity_level_detects_but_never_corrects(self):
        # A single-bit read glitch is correctable under ECC; parity can
        # only detect it — the reread rung recovers the transient.
        model = protected("flip_read_bit", trigger_at=0, level="parity")
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 42)
        value, _ = model.read(0)
        assert value == 42
        assert model.rstats.corrected == 0
        assert model.rstats.reread_recoveries == 1

    def test_level_none_is_transparent(self):
        model = protected("flip_read_bit", trigger_at=0, level="none")
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 42)
        assert model.read(0)[0] != 42  # the glitch sails through
        assert model.rstats.checks == 0

    def test_clean_run_verifies_with_zero_detections(self):
        inner = NamedStateRegisterFile(num_registers=24, context_size=20,
                                       line_size=2)
        model = ProtectedRegisterFile(inner)
        result = get_workload("GateSim").run(model, scale=0.25, seed=3)
        assert result.verified
        assert model.rstats.checks > 0
        assert model.rstats.detected == 0

    def test_invalid_level_rejected(self):
        inner = NamedStateRegisterFile(num_registers=8, context_size=8)
        with pytest.raises(ValueError):
            ProtectedRegisterFile(inner, level="secded")


# -- graceful degradation: lines vs frames ----------------------------------


class TestDegradation:
    def test_nsf_survives_retirements_at_reduced_capacity(self):
        inner = NamedStateRegisterFile(num_registers=24, context_size=20,
                                       line_size=1)
        model = ProtectedRegisterFile(inner)
        for index in range(3):
            inner.retire_line(index)
        assert inner.serviceable_registers() == 21
        assert inner.stats.capacity == 21
        result = get_workload("GateSim").run(model, scale=0.25, seed=3)
        assert result.verified
        assert inner.stats.lines_retired == 3

    def test_segmented_survives_frame_retirement(self):
        inner = SegmentedRegisterFile(num_registers=40, context_size=20)
        model = ProtectedRegisterFile(inner)
        inner.retire_frame(0)
        assert inner.serviceable_registers() == 20
        result = get_workload("GateSim").run(model, scale=0.25, seed=3)
        assert result.verified

    def test_retirement_granularity_gap(self):
        """The measurable NSF advantage: one hard fault costs the NSF a
        single small line, the segmented file a whole frame."""
        nsf = NamedStateRegisterFile(num_registers=40, context_size=20,
                                     line_size=1)
        seg = SegmentedRegisterFile(num_registers=40, context_size=20)
        cid_n = nsf.begin_context()
        nsf.switch_to(cid_n)
        nsf.write(0, 1)
        cid_s = seg.begin_context()
        seg.switch_to(cid_s)
        seg.write(0, 1)
        assert nsf.retire_containing(cid_n, 0) is not None
        assert seg.retire_containing(cid_s, 0) is not None
        assert nsf.retired_register_count() == nsf.line_size == 1
        assert seg.retired_register_count() == seg.frame_size == 20
        assert nsf.retired_register_count() < seg.retired_register_count()
        assert nsf.serviceable_registers() == 39
        assert seg.serviceable_registers() == 20

    def test_last_line_cannot_be_retired(self):
        nsf = NamedStateRegisterFile(num_registers=4, context_size=8,
                                     line_size=2)
        nsf.retire_line(0)
        with pytest.raises(CapacityError):
            nsf.retire_line(1)
        seg = SegmentedRegisterFile(num_registers=40, context_size=20)
        seg.retire_frame(1)
        with pytest.raises(CapacityError):
            seg.retire_frame(0)

    def test_retired_line_never_rejoins_free_pool(self):
        nsf = NamedStateRegisterFile(num_registers=4, context_size=4,
                                     line_size=1)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        nsf.write(0, 5)
        index = nsf.line_index_of(cid, 0)
        nsf.retire_line(index)
        # End the context (the old _free path) and refill the file: the
        # retired index must never be handed out again.
        nsf.end_context(cid)
        cid2 = nsf.begin_context()
        nsf.switch_to(cid2)
        for offset in range(4):
            nsf.write(offset, offset)
        for offset in range(4):
            assert nsf.line_index_of(cid2, offset) != index


# -- cost-model pricing ------------------------------------------------------


class TestResilienceCosts:
    def test_rung_cost_ordering(self):
        assert (NSF_COSTS.machine_check_cycles
                > NSF_COSTS.recovery_reload_cycles
                > NSF_COSTS.correction_cycles)

    def test_per_event_accounting(self):
        model = protected("flip_read_bit", trigger_at=0)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 42)
        model.read(0)
        priced = dataclasses.replace(NSF_COSTS, ecc_check_cycles=0.5)
        events = priced.resilience_event_costs(model.rstats)
        assert events["corrections"] == priced.correction_cycles
        assert events["ecc_checks"] == model.rstats.checks * 0.5
        assert events["machine_checks"] == 0
        assert priced.resilience_cycles(model.rstats) == \
            sum(events.values())

    def test_total_cycles_include_recovery(self):
        model = protected("corrupt_write", trigger_at=0)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 3)
        with pytest.raises(MachineCheckError):
            model.read(0)
        stats = model.inner.inner.stats
        base = NSF_COSTS.total_cycles(stats)
        with_recovery = NSF_COSTS.total_cycles(stats, model.rstats)
        assert with_recovery == base + NSF_COSTS.machine_check_cycles
        assert NSF_COSTS.overhead_fraction(stats, model.rstats) > \
            NSF_COSTS.overhead_fraction(stats)


# -- scheduler robustness ----------------------------------------------------


class TestSchedulerRobustness:
    def test_deadlock_error_carries_wait_graph(self):
        machine = ThreadMachine(
            NamedStateRegisterFile(num_registers=64, context_size=8)
        )
        never = machine.future(name="never")

        def blocked_thread(act):
            yield machine.wait(never)

        machine.spawn(blocked_thread, name="alice")
        machine.spawn(blocked_thread, name="bob")
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        graph = excinfo.value.wait_graph
        assert len(graph) == 2
        alice, = [k for k in graph if k.startswith("alice")]
        bob, = [k for k in graph if k.startswith("bob")]
        assert "never" in graph[alice]
        assert bob in graph[alice]  # peers on the same future are named
        assert "wait graph" in str(excinfo.value)

    def test_watchdog_halts_a_livelock(self):
        machine = ThreadMachine(
            NamedStateRegisterFile(num_registers=64, context_size=8),
            watchdog_cycles=2000,
        )

        def spinner(act):
            while True:
                yield machine.remote(100)

        machine.spawn(spinner, name="spinner")
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        assert "watchdog" in str(excinfo.value)
        assert any(k.startswith("spinner") for k in excinfo.value.wait_graph)

    def test_watchdog_does_not_fire_on_healthy_runs(self):
        machine = ThreadMachine(
            NamedStateRegisterFile(num_registers=64, context_size=8),
            watchdog_cycles=10 ** 9,
        )

        def worker(act):
            reg = act.alloc("x")
            act.let(reg, 7)
            yield machine.remote(10)
            return act.peek(reg)

        thread = machine.spawn(worker, name="worker")
        machine.run()
        assert thread.result.value == 7


class TestRetryingBackingStore:
    def test_fault_free_passthrough(self):
        store = RetryingBackingStore(BackingStore())
        store.spill(1, 0, 42)
        assert store.reload(1, 0) == 42
        assert store.contains(1, 0)
        assert store.peek(1, 0) == 42
        assert store.transient_faults == 0

    def test_transient_faults_are_retried(self):
        store = RetryingBackingStore(BackingStore(), max_retries=10,
                                     fault_rate=0.5, seed=4)
        for offset in range(50):
            store.spill(1, offset, offset)
        for offset in range(50):
            assert store.reload(1, offset) == offset
        assert store.transient_faults > 0
        assert store.retries == store.transient_faults

    def test_persistent_fault_raises_after_bounded_retries(self):
        store = RetryingBackingStore(BackingStore(), max_retries=2,
                                     fault_rate=0.999999, seed=1)
        with pytest.raises(BackingStoreFaultError) as excinfo:
            store.spill(1, 0, 42)
        assert excinfo.value.attempts == 3

    def test_model_runs_through_a_flaky_store(self):
        inner = NamedStateRegisterFile(num_registers=16, context_size=20)
        inner.backing = RetryingBackingStore(inner.backing, max_retries=8,
                                             fault_rate=0.3, seed=9)
        result = get_workload("GateSim").run(inner, scale=0.25, seed=3)
        assert result.verified
        assert inner.backing.transient_faults > 0

    def test_backoff_is_simulated_cycles_and_deterministic(self):
        # The k-th retry of one operation costs base << k simulated
        # cycles — no wall-clock sleeps anywhere on this path.
        def run_store():
            store = RetryingBackingStore(BackingStore(), max_retries=10,
                                         fault_rate=0.5, seed=4,
                                         backoff_base=2)
            for offset in range(50):
                store.spill(1, offset, offset)
            for offset in range(50):
                store.reload(1, offset)
            return store

        first, second = run_store(), run_store()
        assert first.retries > 0
        assert first.backoff_cycles > 0
        assert first.retries == second.retries
        assert first.backoff_cycles == second.backoff_cycles
        # Every retry pays at least the base penalty (attempt 0 pays
        # exactly base, later attempts double it).
        assert first.backoff_cycles >= first.backoff_base * first.retries

    def test_retry_counters_flow_into_regfile_stats(self):
        from repro.core import RegFileStats

        stats = RegFileStats()
        store = RetryingBackingStore(BackingStore(), max_retries=10,
                                     fault_rate=0.5, seed=4,
                                     backoff_base=2).attach_stats(stats)
        for offset in range(50):
            store.spill(1, offset, offset)
        assert stats.backing_transient_faults == store.transient_faults
        assert stats.backing_retries == store.retries
        assert stats.backing_backoff_cycles == store.backoff_cycles
        assert stats.backing_exhaustions == 0

    def test_exhaustion_counted_in_stats(self):
        from repro.core import RegFileStats

        stats = RegFileStats()
        store = RetryingBackingStore(BackingStore(), max_retries=2,
                                     fault_rate=0.999999,
                                     seed=1).attach_stats(stats)
        with pytest.raises(BackingStoreFaultError):
            store.spill(1, 0, 42)
        assert store.exhaustions == 1
        assert stats.backing_exhaustions == 1

    def test_cost_model_prices_backoff_cycles(self):
        from repro.core import CostModel, RegFileStats

        stats = RegFileStats()
        stats.backing_backoff_cycles = 10
        base = CostModel(name="t", backing_backoff_weight=0.0)
        priced = CostModel(name="t", backing_backoff_weight=1.5)
        assert (priced.traffic_cycles(stats)
                - base.traffic_cycles(stats)) == 15.0


# -- the campaign contract ---------------------------------------------------


class TestCampaign:
    @given(kind=st.sampled_from(FAULT_KINDS),
           model_kind=st.sampled_from(("nsf", "segmented")),
           trigger=st.integers(min_value=100, max_value=2200))
    @settings(max_examples=30, deadline=None)
    def test_protection_never_silent(self, kind, model_kind, trigger):
        record = run_single(kind, model_kind, "ecc", trigger,
                            scale=0.15, seed=3)
        assert record["outcome"] != "silent", record

    def test_campaign_is_deterministic(self):
        first = run_campaign(scale=0.3, seed=7)
        second = run_campaign(scale=0.3, seed=7)
        assert first == second


# -- wrapper drop-in satellites ----------------------------------------------


class TestWrapperDropIn:
    def test_dunder_protocols_forwarded(self):
        inner = NamedStateRegisterFile(num_registers=8, context_size=8)
        for model in (FaultyRegisterFile(inner, "corrupt_write",
                                         trigger_at=10 ** 9),
                      ProtectedRegisterFile(inner)):
            cid = model.begin_context()
            model.switch_to(cid)
            model.write(0, 1)
            model.write(1, 2)
            assert cid in model
            assert cid + 1 not in model
            assert len(model) == len(inner) == 2
            assert list(model) == list(inner) == [cid]
            model.end_context(cid)

    def test_free_register_evicts_phantom_history(self):
        # A freed register's tracked values must not leak into a later
        # incarnation of the same (cid, offset): stale_read used to fire
        # against the phantom previous value.
        inner = NamedStateRegisterFile(num_registers=8, context_size=8)
        model = FaultyRegisterFile(inner, "stale_read", trigger_at=0)
        cid = model.begin_context()
        model.switch_to(cid)
        model.write(0, 5)
        model.write(0, 9)
        model.free_register(0)
        model.write(0, 7)  # a new life for register 0
        assert model.read(0)[0] == 7  # no phantom 5/9 from the old life
        assert not model.injected
        model.write(0, 8)
        assert model.read(0)[0] == 7  # genuine staleness still injects
        assert model.injected
