"""Tests for the shared RegisterFile base-class machinery."""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.errors import (
    NoCurrentContextError,
    RegisterRangeError,
    UnknownContextError,
)


class TestConstructionValidation:
    @pytest.mark.parametrize("model_cls", [NamedStateRegisterFile,
                                           SegmentedRegisterFile])
    def test_rejects_nonpositive_sizes(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(num_registers=0, context_size=8)
        with pytest.raises(ValueError):
            model_cls(num_registers=8, context_size=0)


class TestContextIds:
    def test_explicit_base_address_programs_ctable(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=8)
        cid = nsf.begin_context(base_address=0x4242)
        assert nsf.backing.ctable.lookup(cid) == 0x4242

    def test_auto_base_addresses_are_disjoint(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=8)
        a = nsf.begin_context()
        b = nsf.begin_context()
        base_a = nsf.backing.ctable.lookup(a)
        base_b = nsf.backing.ctable.lookup(b)
        assert abs(base_a - base_b) >= nsf.context_size

    def test_fresh_cid_skips_live_ones(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=8)
        nsf.begin_context(cid=0)
        nsf.begin_context(cid=1)
        c = nsf.begin_context()  # must not collide
        assert c not in (0, 1)

    def test_end_clears_current(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=8)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        nsf.end_context(cid)
        assert nsf.current_cid is None
        with pytest.raises(NoCurrentContextError):
            nsf.write(0, 1)

    def test_explicit_cid_must_be_known(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=8)
        nsf.begin_context(cid=0)
        nsf.switch_to(0)
        with pytest.raises(UnknownContextError):
            nsf.write(0, 1, cid=42)
        with pytest.raises(UnknownContextError):
            nsf.read(0, cid=42)

    def test_switch_to_same_cid_not_counted(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=8)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        nsf.switch_to(cid)
        nsf.switch_to(cid)
        assert nsf.stats.context_switches == 1


class TestRangeChecks:
    @pytest.mark.parametrize("model_cls", [NamedStateRegisterFile,
                                           SegmentedRegisterFile])
    def test_offsets_validated_before_touching_state(self, model_cls):
        model = model_cls(num_registers=16, context_size=8)
        cid = model.begin_context()
        model.switch_to(cid)
        for bad in (-1, 8, 100):
            with pytest.raises(RegisterRangeError):
                model.write(bad, 1)
            with pytest.raises(RegisterRangeError):
                model.read(bad)
            with pytest.raises(RegisterRangeError):
                model.free_register(bad)
        assert model.stats.writes == 0  # nothing was counted


class TestRepr:
    def test_repr_mentions_shape(self):
        nsf = NamedStateRegisterFile(num_registers=16, context_size=8)
        text = repr(nsf)
        assert "NamedStateRegisterFile" in text
        assert "registers=16" in text

    def test_repr_shows_residency(self):
        seg = SegmentedRegisterFile(num_registers=16, context_size=8)
        cid = seg.begin_context()
        seg.switch_to(cid)
        assert "resident=1" in repr(seg)


class TestThrashMatrix:
    """Every benchmark must stay correct on pathologically small files."""

    @pytest.mark.parametrize("name", [
        "GateSim", "RTLSim", "ZipFile", "AS", "DTW", "Gamteb",
        "Paraffins", "Quicksort", "Wavefront",
    ])
    def test_two_frame_files(self, name):
        from repro.workloads import get_workload

        workload = get_workload(name)
        context = workload.context_size
        for model in (
            NamedStateRegisterFile(num_registers=2 * context,
                                   context_size=context),
            SegmentedRegisterFile(num_registers=2 * context,
                                  context_size=context),
        ):
            result = workload.run(model, scale=0.25, seed=4)
            assert result.verified, (name, model.kind)

    def test_single_line_nsf_still_correct(self):
        from repro.workloads import get_workload

        workload = get_workload("Quicksort")
        model = NamedStateRegisterFile(num_registers=1, context_size=32)
        result = workload.run(model, scale=0.2, seed=4)
        assert result.verified
        # Practically every access misses — brutal but correct.
        assert model.stats.read_miss_rate > 0.5
