"""Tests for executed software window-trap handlers."""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.cpu import CPU
from repro.lang import compile_source

FIB = """
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { return fib(10); }
"""


def program():
    return compile_source(FIB).program


def seg_file(registers=80):
    return SegmentedRegisterFile(num_registers=registers,
                                 context_size=20, track_moves=True)


class TestConfiguration:
    def test_requires_move_tracking(self):
        seg = SegmentedRegisterFile(num_registers=80, context_size=20)
        with pytest.raises(ValueError):
            CPU(program(), seg, software_spill_traps=True)

    def test_disabled_by_default(self):
        cpu = CPU(program(), seg_file())
        assert cpu.trap_unit is None


class TestExecution:
    def test_functional_result_unchanged(self):
        cpu = CPU(program(), seg_file(), software_spill_traps=True)
        assert cpu.run().return_value == 55

    def test_traps_fire_on_window_misses(self):
        cpu = CPU(program(), seg_file(), software_spill_traps=True)
        cpu.run()
        stats = cpu.trap_unit.stats
        assert stats.traps > 0
        assert stats.instructions > 0
        assert stats.registers_stored > 0
        assert stats.registers_loaded > 0

    def test_handler_instructions_counted_in_total(self):
        plain = CPU(program(), seg_file())
        plain_result = plain.run()
        trapped = CPU(program(), seg_file(), software_spill_traps=True)
        trapped_result = trapped.run()
        # Same program, same answer, more executed instructions.
        assert trapped_result.return_value == plain_result.return_value
        extra = (trapped_result.instructions
                 - plain_result.instructions)
        assert extra == trapped.trap_unit.stats.instructions

    def test_handler_shape(self):
        cpu = CPU(program(), seg_file(), software_spill_traps=True)
        cpu.run()
        stats = cpu.trap_unit.stats
        unit = cpu.trap_unit
        expected = (
            stats.traps * (unit.ENTRY_INSTRUCTIONS
                           + unit.EXIT_INSTRUCTIONS)
            + (stats.registers_stored + stats.registers_loaded)
            * unit.PER_REGISTER_INSTRUCTIONS
        )
        assert stats.instructions == expected

    def test_nsf_takes_almost_no_traps(self):
        # The NSF has no switch misses; with move tracking on, the trap
        # unit fires only for its rare demand reloads.
        nsf = NamedStateRegisterFile(num_registers=80, context_size=20,
                                     track_moves=True)
        cpu = CPU(program(), nsf, software_spill_traps=True)
        result = cpu.run()
        assert result.return_value == 55
        seg_cpu = CPU(program(), seg_file(), software_spill_traps=True)
        seg_cpu.run()
        assert (cpu.trap_unit.stats.instructions
                < seg_cpu.trap_unit.stats.instructions / 10)

    def test_trap_memory_traffic_hits_cache(self):
        cpu = CPU(program(), seg_file(), software_spill_traps=True)
        cpu.run()
        plain = CPU(program(), seg_file())
        plain.run()
        assert cpu.cache.accesses > plain.cache.accesses


class TestCostModelValidation:
    def test_measured_and_analytic_same_order(self):
        # The executed-trap overhead and SEGMENT_SW_COSTS' analytic
        # estimate must agree within a small factor.
        from repro.core import SEGMENT_SW_COSTS

        trapped = CPU(program(), seg_file(), software_spill_traps=True)
        trapped_result = trapped.run()
        measured = trapped.trap_unit.stats.cycles / trapped_result.cycles

        analytic_file = SegmentedRegisterFile(num_registers=80,
                                              context_size=20)
        CPU(program(), analytic_file).run()
        analytic = SEGMENT_SW_COSTS.overhead_fraction(analytic_file.stats)

        assert measured > 0.05
        assert analytic > 0.05
        ratio = analytic / measured
        assert 0.3 < ratio < 3.0
