"""Tests for the mini-C compiler: lexer through generated code."""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.errors import CompileError
from repro.lang import (
    allocate,
    compile_source,
    lower_program,
    parse,
    run_source,
    tokenize,
)
from repro.lang.liveness import analyze, basic_blocks
from repro.lang.regalloc import build_interference


def result_of(source, registers=80, context=20, k=20):
    rf = NamedStateRegisterFile(num_registers=registers,
                                context_size=context)
    return run_source(source, rf, k=k).return_value


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("func f(x) { return x + 0x10; }")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "(", "ident", ")", "{",
                         "keyword", "ident", "+", "number", ";", "}",
                         "eof"]
        assert tokens[9].value == 16

    def test_comments_skipped(self):
        tokens = tokenize("x // comment\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]
        assert tokens[1].line == 2

    def test_multichar_operators(self):
        tokens = tokenize("a <= b << c != d")
        assert [t.kind for t in tokens[:-1]] == [
            "ident", "<=", "ident", "<<", "ident", "!=", "ident",
        ]

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")


class TestParser:
    def test_function_shape(self):
        program = parse("func add(a, b) { return a + b; }")
        fn = program.function("add")
        assert fn.params == ["a", "b"]

    def test_precedence(self):
        # 2 + 3 * 4 parses as 2 + (3 * 4)
        program = parse("func main() { return 2 + 3 * 4; }")
        ret = program.function("main").body[0]
        assert ret.expr.op == "+"
        assert ret.expr.right.op == "*"

    def test_else_if_chain(self):
        source = """
        func main() {
            if (1) { return 1; } else if (2) { return 2; }
            else { return 3; }
        }
        """
        node = parse(source).function("main").body[0]
        assert node.else_body[0].cond.value == 2

    def test_duplicate_function(self):
        with pytest.raises(CompileError):
            parse("func f() {} func f() {}")

    def test_duplicate_param(self):
        with pytest.raises(CompileError):
            parse("func f(a, a) {}")

    def test_syntax_error_has_line(self):
        with pytest.raises(CompileError) as excinfo:
            parse("func f() {\n  var = 3;\n}")
        assert excinfo.value.line == 2


class TestLowering:
    def test_requires_main(self):
        with pytest.raises(CompileError):
            lower_program(parse("func f() { return 0; }"))

    def test_main_takes_no_args(self):
        with pytest.raises(CompileError):
            lower_program(parse("func main(x) { return x; }"))

    def test_undefined_variable(self):
        with pytest.raises(CompileError):
            lower_program(parse("func main() { return y; }"))

    def test_redeclared_variable(self):
        with pytest.raises(CompileError):
            lower_program(parse("func main() { var x; var x; return 0; }"))

    def test_undefined_function_call(self):
        with pytest.raises(CompileError):
            lower_program(parse("func main() { return g(1); }"))

    def test_arity_mismatch(self):
        with pytest.raises(CompileError):
            lower_program(parse(
                "func f(a) { return a; } func main() { return f(1, 2); }"
            ))

    def test_params_get_definitions(self):
        ir = lower_program(parse(
            "func f(a, b) { return a + b; } func main() { return f(1, 2); }"
        ))
        params = [i for i in ir.functions["f"].instructions
                  if i.op == "param"]
        assert len(params) == 2


class TestLivenessAndAllocation:
    def test_basic_blocks_split_at_branches(self):
        ir = lower_program(parse(
            "func main() { var x = 1; if (x) { x = 2; } return x; }"
        )).functions["main"]
        blocks, _ = basic_blocks(ir.instructions)
        assert len(blocks) >= 3

    def test_parameters_interfere(self):
        ir = lower_program(parse(
            "func f(a, b) { return a - b; } func main() { return f(5, 2); }"
        )).functions["f"]
        live_out, _ = analyze(ir)
        graph = build_interference(ir.instructions, live_out)
        assert 1 in graph[0]  # param a conflicts with param b

    def test_allocation_fits_small_function(self):
        ir = lower_program(parse(
            "func main() { var a = 1; var b = 2; return a + b; }"
        )).functions["main"]
        allocation = allocate(ir, k=8)
        assert allocation.num_spill_slots == 0
        assert max(allocation.assignment.values()) < 8

    def test_allocation_spills_under_pressure(self):
        # Ten simultaneously-live variables cannot fit in 4 registers.
        decls = "\n".join(f"var x{i} = {i};" for i in range(10))
        total = " + ".join(f"x{i}" for i in range(10))
        ir = lower_program(parse(
            f"func main() {{ {decls} return {total}; }}"
        )).functions["main"]
        allocation = allocate(ir, k=4)
        assert allocation.num_spill_slots > 0
        assert max(allocation.assignment.values()) < 4

    def test_k_too_small_rejected(self):
        ir = lower_program(parse("func main() { return 0; }"))
        with pytest.raises(CompileError):
            allocate(ir.functions["main"], k=1)


class TestEndToEnd:
    def test_constants_and_arithmetic(self):
        assert result_of("func main() { return 2 + 3 * 4; }") == 14
        assert result_of("func main() { return (2 + 3) * 4; }") == 20
        assert result_of("func main() { return 17 % 5; }") == 2
        assert result_of("func main() { return 1 << 6; }") == 64
        assert result_of("func main() { return 64 >> 3; }") == 8

    def test_large_constants(self):
        assert result_of("func main() { return 1000000; }") == 1_000_000
        assert result_of("func main() { return 0 - 123456; }") == -123456

    def test_comparisons(self):
        assert result_of("func main() { return 3 < 5; }") == 1
        assert result_of("func main() { return 5 <= 4; }") == 0
        assert result_of("func main() { return 5 > 4; }") == 1
        assert result_of("func main() { return 4 >= 5; }") == 0
        assert result_of("func main() { return 4 == 4; }") == 1
        assert result_of("func main() { return 4 != 4; }") == 0

    def test_logical_and_unary(self):
        assert result_of("func main() { return 2 && 3; }") == 1
        assert result_of("func main() { return 0 || 7; }") == 1
        assert result_of("func main() { return !5; }") == 0
        assert result_of("func main() { return !0; }") == 1
        assert result_of("func main() { return -(3 + 4); }") == -7

    def test_variables_and_while(self):
        source = """
        func main() {
            var sum = 0;
            var i = 1;
            while (i <= 10) { sum = sum + i; i = i + 1; }
            return sum;
        }
        """
        assert result_of(source) == 55

    def test_if_else(self):
        source = """
        func classify(x) {
            if (x < 0) { return 0 - 1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        func main() {
            return classify(0-5) * 100 + classify(0) * 10 + classify(9);
        }
        """
        assert result_of(source) == -99  # -1*100 + 0*10 + 1

    def test_memory_and_alloc(self):
        source = """
        func main() {
            var a = alloc(4);
            var b = alloc(4);
            mem[a] = 11;
            mem[b] = 22;
            return mem[a] * 100 + mem[b] + (b - a);
        }
        """
        assert result_of(source) == 11 * 100 + 22 + 4

    def test_recursion(self):
        source = """
        func fact(n) {
            if (n < 2) { return 1; }
            return n * fact(n - 1);
        }
        func main() { return fact(8); }
        """
        assert result_of(source) == 40320

    def test_mutual_recursion(self):
        source = """
        func is_even(n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        func is_odd(n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        func main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert result_of(source) == 11

    def test_many_arguments(self):
        source = """
        func weigh(a, b, c, d, e, f) {
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
        }
        func main() { return weigh(1, 2, 3, 4, 5, 6); }
        """
        assert result_of(source) == 1 + 4 + 9 + 16 + 25 + 36

    def test_implicit_return_zero(self):
        assert result_of("func main() { var x = 5; }") == 0

    def test_register_pressure_spills_correctly(self):
        # Force spilling with k=4; the result must still be right.
        decls = "\n".join(f"var x{i} = {i + 1};" for i in range(12))
        total = " + ".join(f"x{i}" for i in range(12))
        source = f"func main() {{ {decls} return {total}; }}"
        assert result_of(source, k=4) == sum(range(1, 13))

    def test_same_answer_on_every_model(self):
        source = """
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(11); }
        """
        answers = set()
        for rf in (
            NamedStateRegisterFile(num_registers=80, context_size=20),
            NamedStateRegisterFile(num_registers=8, context_size=20),
            SegmentedRegisterFile(num_registers=80, context_size=20),
            SegmentedRegisterFile(num_registers=40, context_size=20,
                                  spill_mode="live"),
        ):
            answers.add(run_source(source, rf).return_value)
        assert answers == {89}

    def test_compiled_function_info(self):
        compiled = compile_source("""
        func helper(a, b) { return a * b; }
        func main() { return helper(6, 7); }
        """)
        assert "helper" in compiled.functions
        info = compiled.functions["helper"]
        assert info.registers_used >= 2
        assert info.allocator_rounds >= 1
        assert "call helper" in compiled.assembly
