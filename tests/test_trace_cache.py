"""Content-addressed trace cache: keying, hits, recovery, knobs."""

import os

import pytest

from repro.core import NamedStateRegisterFile
from repro.evalx.common import make_nsf, run_workload
from repro.trace import cache as trace_cache
from repro.trace.replay import replay
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path, monkeypatch):
    """Point the cache at a private directory and reset accounting."""
    monkeypatch.setenv(trace_cache.ENV_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(trace_cache.ENV_DISABLE, raising=False)
    monkeypatch.delenv(trace_cache.ENV_LOG, raising=False)
    trace_cache._memo.clear()
    trace_cache.STATS.reset()
    trace_cache.reset_degradation()
    yield
    trace_cache._memo.clear()
    trace_cache.STATS.reset()
    trace_cache.reset_degradation()


def test_miss_records_then_hits():
    workload = get_workload("DTW")
    first = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert trace_cache.STATS.misses == 1
    assert trace_cache.STATS.records == 1
    second = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert second is first
    assert trace_cache.STATS.hits == 1


def test_disk_hit_across_processes_simulated():
    """A fresh process (empty memo) must load the published file."""
    workload = get_workload("DTW")
    recorded = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    trace_cache._memo.clear()
    loaded = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert loaded == recorded
    assert trace_cache.STATS.records == 1  # no re-execution


def test_key_separates_scale_seed_and_workload():
    w1 = get_workload("DTW")
    w2 = get_workload("Quicksort")
    paths = {
        trace_cache.trace_path(w1, 0.2, 3).name,
        trace_cache.trace_path(w1, 0.2, 4).name,
        trace_cache.trace_path(w1, 0.3, 3).name,
        trace_cache.trace_path(w2, 0.2, 3).name,
    }
    assert len(paths) == 4


def test_corrupt_cache_file_re_records():
    workload = get_workload("DTW")
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    path = trace_cache.trace_path(workload, 0.2, 3)
    path.write_bytes(b"NSFT garbage")
    trace_cache._memo.clear()
    trace_cache.STATS.reset()
    recovered = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert trace_cache.STATS.records == 1
    assert recovered.counts()["R"] > 0


def test_memo_invalidated_when_disk_entry_changes():
    """Regression: the in-process memo must not outlive the disk entry.

    Replacing the published file (different size/mtime) has to force a
    re-read; a corrupt replacement is quarantined and re-recorded, not
    served from the poisoned memo."""
    workload = get_workload("DTW")
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    path = trace_cache.trace_path(workload, 0.2, 3)
    path.write_bytes(b"NSFT poisoned entry")
    os.utime(path, (1, 1))  # make the change visible even on coarse mtime
    trace_cache.STATS.reset()
    recovered = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    # stale memo discarded -> disk read -> quarantine -> re-record
    assert trace_cache.STATS.hits == 0
    assert trace_cache.STATS.records == 1
    assert trace_cache.STATS.quarantined == 1
    assert recovered.counts()["R"] > 0
    entries = trace_cache.quarantine_entries()
    assert len(entries) == 1
    assert "quarantined" not in entries[0][1] or entries[0][1]


def test_memo_survives_while_disk_unchanged():
    """The stat re-validation must not break same-object memo hits."""
    workload = get_workload("DTW")
    first = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    second = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert second is first
    assert trace_cache.STATS.hits == 1


def test_memo_invalidated_when_disk_entry_deleted():
    workload = get_workload("DTW")
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    trace_cache.trace_path(workload, 0.2, 3).unlink()
    trace_cache.STATS.reset()
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert trace_cache.STATS.hits == 0
    assert trace_cache.STATS.records == 1


def test_quarantine_keeps_corrupt_bytes_and_reason(tmp_path):
    workload = get_workload("DTW")
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    path = trace_cache.trace_path(workload, 0.2, 3)
    path.write_bytes(b"NSFT garbage")
    trace_cache._memo.clear()
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    (qpath, reason), = trace_cache.quarantine_entries()
    assert qpath.read_bytes() == b"NSFT garbage"
    assert reason  # the .reason sidecar explains the move
    assert trace_cache.clear_quarantine() == 1
    assert trace_cache.quarantine_entries() == []


def test_env_disable(monkeypatch):
    monkeypatch.setenv(trace_cache.ENV_DISABLE, "1")
    assert not trace_cache.enabled()
    workload = get_workload("DTW")
    model = make_nsf(workload)
    run_workload(workload, model, scale=0.2, seed=3)
    assert model.stats.instructions > 0
    assert trace_cache.STATS.records == 0
    assert list(trace_cache.entries()) == []


def test_run_workload_stats_match_direct():
    workload = get_workload("Quicksort")
    cached = run_workload(workload, make_nsf(workload), scale=0.2, seed=3)
    direct = make_nsf(workload)
    workload.run(direct, scale=0.2, seed=3)
    assert cached.stats.snapshot() == direct.stats.snapshot()


def test_log_file_records_outcomes(tmp_path, monkeypatch):
    log = tmp_path / "cache.log"
    monkeypatch.setenv(trace_cache.ENV_LOG, str(log))
    workload = get_workload("DTW")
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    lines = log.read_text().splitlines()
    outcomes = [line.split()[0] for line in lines]
    assert outcomes == ["MISS", "RECORD", "HIT"]


# -- timing-sensitive workloads (model-keyed entries) -----------------------


def test_gamteb_is_marked_unstable():
    assert get_workload("Gamteb").trace_stable is False
    assert get_workload("DTW").trace_stable is True


def test_model_fingerprint_separates_configs():
    workload = get_workload("Gamteb")
    fp1 = trace_cache.model_fingerprint(make_nsf(workload))
    fp2 = trace_cache.model_fingerprint(make_nsf(workload, line_size=4))
    fp3 = trace_cache.model_fingerprint(make_nsf(workload))
    assert fp1 == fp3
    assert fp1 != fp2
    assert trace_cache.model_fingerprint(object()) is None


def test_unstable_workload_memoizes_per_model():
    workload = get_workload("Gamteb")
    cold = make_nsf(workload)
    run_workload(workload, cold, scale=0.1, seed=3)
    assert trace_cache.STATS.records == 1
    warm = make_nsf(workload)
    run_workload(workload, warm, scale=0.1, seed=3)
    assert trace_cache.STATS.records == 1  # replayed, not re-executed
    assert warm.stats.snapshot() == cold.stats.snapshot()
    # a different configuration records its own trace
    other = make_nsf(workload, line_size=4)
    run_workload(workload, other, scale=0.1, seed=3)
    assert trace_cache.STATS.records == 2


def test_unstable_warm_stats_match_direct():
    workload = get_workload("Gamteb")
    run_workload(workload, make_nsf(workload), scale=0.1, seed=3)  # cold
    warm = make_nsf(workload)
    run_workload(workload, warm, scale=0.1, seed=3)
    direct = make_nsf(workload)
    workload.run(direct, scale=0.1, seed=3)
    assert warm.stats.snapshot() == direct.stats.snapshot()


# -- fingerprint invalidation ----------------------------------------------


def test_recorder_fingerprint_in_key(monkeypatch):
    workload = get_workload("DTW")
    before = trace_cache.trace_path(workload, 0.2, 3).name
    monkeypatch.setattr(trace_cache, "_fingerprint", "deadbeef")
    after = trace_cache.trace_path(workload, 0.2, 3).name
    assert before != after


# -- CLI --------------------------------------------------------------------


def test_cli_info_and_clear(capsys):
    workload = get_workload("DTW")
    trace_cache.load_or_record(workload, scale=0.2, seed=3)
    assert trace_cache.main(["info"]) == 0
    out = capsys.readouterr().out
    assert "1 entry" in out
    assert trace_cache.main(["clear"]) == 0
    out = capsys.readouterr().out
    assert "removed 1" in out
    assert list(trace_cache.entries()) == []


def test_replay_from_cache_file_matches_original(tmp_path):
    """End-to-end: record, reload from disk, replay, same stats."""
    workload = get_workload("Quicksort")
    trace = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    trace_cache._memo.clear()
    reloaded = trace_cache.load_or_record(workload, scale=0.2, seed=3)
    a = NamedStateRegisterFile(num_registers=128,
                               context_size=workload.context_size)
    b = NamedStateRegisterFile(num_registers=128,
                               context_size=workload.context_size)
    replay(trace, a, verify=False)
    replay(reloaded, b, verify=True)
    assert a.stats.snapshot() == b.stats.snapshot()
