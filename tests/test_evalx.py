"""Tests for the experiment harness: every table/figure regenerates with
the paper's qualitative shape."""

import io

import pytest

from repro.evalx import EXPERIMENTS, run_experiment
from repro.evalx.tables import ExperimentTable

SCALE = 0.4

# run_experiment is expensive; compute each table once per session.
_cache = {}


def table(name):
    if name not in _cache:
        _cache[name] = run_experiment(name, scale=SCALE, seed=3)
    return _cache[name]


class TestExperimentTable:
    def test_add_row_validates_width(self):
        t = ExperimentTable("X", "t", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)
        t.add_row(1, 2)
        assert t.rows == [[1, 2]]

    def test_column_and_lookup(self):
        t = ExperimentTable("X", "t", headers=["k", "v"])
        t.add_row("one", 1)
        t.add_row("two", 2)
        assert t.column("v") == [1, 2]
        assert t.lookup("two", "v") == 2
        with pytest.raises(KeyError):
            t.lookup("three", "v")

    def test_render_contains_everything(self):
        t = ExperimentTable("Figure 0", "demo", headers=["k", "v"],
                            notes="a note")
        t.add_row("x", 1.5)
        text = t.render()
        assert "Figure 0" in text and "demo" in text
        assert "x" in text and "1.5" in text and "a note" in text

    def test_to_dict_roundtrip(self):
        t = ExperimentTable("T", "t", headers=["a"], rows=[[1]])
        d = t.to_dict()
        assert d["headers"] == ["a"] and d["rows"] == [[1]]


class TestRegistry:
    def test_all_experiments_present(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14", "claims",
            "profile", "resilience", "compression", "chaos",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1:
    def test_nine_benchmarks(self):
        t = table("table1")
        assert len(t.rows) == 9
        assert t.column("Benchmark")[0] == "GateSim"

    def test_parallel_more_switch_heavy_than_as(self):
        t = table("table1")
        gamteb = t.lookup("Gamteb", "Avg instr per switch")
        as_bench = t.lookup("AS", "Avg instr per switch")
        assert gamteb < as_bench


class TestFig05:
    def test_prototype_properties(self):
        t = table("fig05")
        assert t.lookup("Organization", "Value") == "NSF 32x32"
        assert t.lookup("Decoder tag width (bits)", "Value") == 10
        assert t.lookup("Ports (R/W)", "Value") == "2R1W"
        shares = [
            t.lookup("  decode share %", "Value"),
            t.lookup("  valid/miss logic share %", "Value"),
            t.lookup("  data array share %", "Value"),
        ]
        assert abs(sum(shares) - 100.0) < 0.5


class TestFig06:
    def test_nsf_within_paper_band(self):
        t = table("fig06")
        ratios = [float(r.rstrip("x")) for r in t.column("vs Segment")]
        nsf_ratios = [r for r in ratios if r != 1.0]
        assert len(nsf_ratios) == 2
        for ratio in nsf_ratios:
            assert 1.03 <= ratio <= 1.09  # paper: 5-6% slower


class TestFig07And08:
    def test_three_port_overhead(self):
        t = table("fig07")
        ratio_128 = int(t.rows[1][-1].rstrip("%"))
        ratio_64 = int(t.rows[3][-1].rstrip("%"))
        assert 140 <= ratio_128 <= 165
        assert 120 <= ratio_64 <= 140

    def test_six_port_overhead_smaller(self):
        t7 = table("fig07")
        t8 = table("fig08")
        three = int(t7.rows[1][-1].rstrip("%"))
        six = int(t8.rows[1][-1].rstrip("%"))
        assert six < three


class TestFig09:
    def test_nsf_beats_segment_everywhere(self):
        t = table("fig09")
        for row in t.rows:
            nsf_avg = row[t.headers.index("NSF avg %")]
            seg_avg = row[t.headers.index("Segment avg %")]
            assert nsf_avg >= seg_avg

    def test_sequential_ratio_band(self):
        # Paper: NSF holds 2-3x more active data for sequential code.
        t = table("fig09")
        ratios = [row[-1] for row in t.rows if row[1] == "Sequential"]
        assert max(ratios) >= 1.8

    def test_max_at_least_avg(self):
        t = table("fig09")
        for row in t.rows:
            assert (row[t.headers.index("NSF max %")]
                    >= row[t.headers.index("NSF avg %")])


class TestFig10:
    def test_segment_reloads_dominate(self):
        t = table("fig10")
        for row in t.rows:
            nsf = row[t.headers.index("NSF %")]
            seg = row[t.headers.index("Segment %")]
            assert seg >= nsf

    def test_live_subset_of_total(self):
        t = table("fig10")
        for row in t.rows:
            seg = row[t.headers.index("Segment %")]
            live = row[t.headers.index("Segment live %")]
            assert live <= seg

    def test_sequential_gap_is_huge(self):
        # Paper: 1,000-10,000x for sequential applications.
        t = table("fig10")
        for row in t.rows:
            if row[1] != "Sequential":
                continue
            nsf = row[t.headers.index("NSF %")]
            seg = row[t.headers.index("Segment %")]
            assert nsf == 0 or seg / nsf > 100


class TestFig11:
    def test_nsf_holds_more_contexts(self):
        # While capacity binds (small files), the NSF packs strictly
        # more contexts; once every activation fits, both saturate at
        # the program's live-context profile.
        t = table("fig11")
        for row in t.rows:
            frames = row[0]
            if frames <= 6:
                assert row[t.headers.index("Seq NSF")] >= \
                    row[t.headers.index("Seq Segment")]
                assert row[t.headers.index("Par NSF")] >= \
                    row[t.headers.index("Par Segment")]
            # Segmented can never exceed its frame count.
            assert row[t.headers.index("Seq Segment")] <= frames
            assert row[t.headers.index("Par Segment")] <= frames

    def test_sequential_nsf_exceeds_frame_count_when_small(self):
        # Paper: the NSF holds >2N contexts for sequential code.
        t = table("fig11")
        first = t.rows[0]
        assert first[t.headers.index("Seq NSF")] > 1.5 * first[0]


class TestFig12:
    def test_reloads_fall_with_size(self):
        t = table("fig12")
        seg = t.column("Seq Segment %")
        assert seg[0] >= seg[-1]

    def test_nsf_below_segment_everywhere(self):
        t = table("fig12")
        for row in t.rows:
            assert row[t.headers.index("Seq NSF %")] <= \
                row[t.headers.index("Seq Segment %")]
            assert row[t.headers.index("Par NSF %")] <= \
                row[t.headers.index("Par Segment %")]

    def test_sequential_nsf_collapses(self):
        # Once the call chain fits, sequential NSF traffic vanishes.
        t = table("fig12")
        assert t.rows[-1][t.headers.index("Seq NSF %")] < 0.01


class TestFig13:
    def test_strategy_ordering(self):
        # active <= live <= full-line reload, at every line size.
        t = table("fig13")
        for row in t.rows:
            full = row[t.headers.index("Reload %")]
            live = row[t.headers.index("Live reload %")]
            active = row[t.headers.index("Active reload %")]
            assert active <= live + 1e-9
            # full counts empty slots, so it can only exceed live when
            # lines hold more than one register.
            if row[1] > 1:
                assert full >= live - 1e-9

    def test_single_register_lines_minimize_traffic(self):
        t = table("fig13")
        for kind in ("Sequential", "Parallel"):
            rows = [r for r in t.rows if r[0] == kind]
            reloads = [r[t.headers.index("Reload %")] for r in rows]
            assert reloads[0] == min(reloads)
            assert reloads[-1] >= reloads[0]


class TestFig14:
    def test_overhead_ordering(self):
        t = table("fig14")
        for row in t.rows:
            nsf = row[t.headers.index("NSF %")]
            hw = row[t.headers.index("Segment HW %")]
            sw = row[t.headers.index("Segment SW %")]
            assert nsf < hw < sw

    def test_serial_nsf_overhead_vanishes(self):
        # Paper: 0.01% for serial code.
        t = table("fig14")
        serial = t.lookup("Serial", "NSF %")
        assert serial < 1.0

    def test_nsf_speedups_positive(self):
        t = table("fig14")
        for row in t.rows:
            assert row[t.headers.index("NSF speedup vs HW %")] > 0
            assert row[t.headers.index("NSF speedup vs SW %")] > 0


class TestClaims:
    def test_every_conclusion_holds(self):
        t = table("claims")
        assert len(t.rows) == 6
        for row in t.rows:
            assert row[-1] == "yes", row


class TestCompression:
    def test_contract_holds(self):
        from repro.evalx.compression import assert_compression_contract
        assert_compression_contract(table("compression"))

    def test_full_sweep_shape(self):
        t = table("compression")
        # 2 workloads x 5 granularities x 5 codecs
        assert len(t.rows) == 50
        assert set(t.column("Codec")) == {"raw", "zero", "narrow",
                                          "basedelta", "dict"}

    def test_frame_spills_compress_best(self):
        # Whole frames ship dead slots, which cost nothing compressed;
        # so for every codec the seg-frame ratio beats seg-live.
        t = table("compression")
        model = t.headers.index("Model")
        codec = t.headers.index("Codec")
        ratio = t.headers.index("Ratio")
        for wl in set(t.column("Workload")):
            rows = [r for r in t.rows if r[0] == wl]
            for c in ("zero", "narrow", "basedelta", "dict"):
                frame = [r[ratio] for r in rows
                         if r[model] == "seg-frame" and r[codec] == c]
                live = [r[ratio] for r in rows
                        if r[model] == "seg-live" and r[codec] == c]
                assert frame[0] >= live[0], (wl, c)


class TestReport:
    def test_run_all_writes_every_table(self):
        # Use a tiny scale: this runs every experiment end to end.
        from repro.evalx.report import run_all
        stream = io.StringIO()
        results = run_all(scale=0.25, seed=3, stream=stream)
        assert set(results) == set(EXPERIMENTS)
        text = stream.getvalue()
        assert "Figure 14" in text and "Table 1" in text

    def test_cli_single_experiment(self, capsys):
        from repro.evalx.report import main
        assert main(["--experiment", "fig06", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
