"""Unit tests for the Named-State Register File model."""

import pytest

from repro.core import NamedStateRegisterFile
from repro.errors import (
    CapacityError,
    DuplicateContextError,
    NoCurrentContextError,
    ReadBeforeWriteError,
    RegisterRangeError,
    UnknownContextError,
)


def make(registers=8, context=8, line=1, **kw):
    return NamedStateRegisterFile(
        num_registers=registers, context_size=context, line_size=line, **kw
    )


class TestConstruction:
    def test_basic_shape(self):
        nsf = make(registers=128, context=32, line=4)
        assert nsf.num_lines == 32
        assert nsf.line_size == 4
        assert nsf.kind == "nsf"

    def test_rejects_nondivisible_line_size(self):
        with pytest.raises(ValueError):
            make(registers=10, line=4)

    def test_rejects_bad_scope(self):
        with pytest.raises(ValueError):
            make(reload_scope="frame")

    def test_rejects_zero_registers(self):
        with pytest.raises(ValueError):
            make(registers=0)

    def test_rejects_zero_line(self):
        with pytest.raises(ValueError):
            make(line=0)


class TestContextLifecycle:
    def test_begin_assigns_fresh_cids(self):
        nsf = make()
        a = nsf.begin_context()
        b = nsf.begin_context()
        assert a != b
        assert nsf.stats.contexts_created == 2

    def test_duplicate_cid_rejected(self):
        nsf = make()
        nsf.begin_context(cid=7)
        with pytest.raises(DuplicateContextError):
            nsf.begin_context(cid=7)

    def test_end_frees_registers_without_spilling(self):
        nsf = make(registers=4, context=4)
        a = nsf.begin_context()
        nsf.switch_to(a)
        for i in range(4):
            nsf.write(i, i)
        nsf.end_context(a)
        assert nsf.active_register_count() == 0
        assert nsf.allocated_lines() == 0
        assert nsf.stats.registers_spilled == 0
        assert len(nsf.backing) == 0

    def test_end_unknown_context_raises(self):
        nsf = make()
        with pytest.raises(UnknownContextError):
            nsf.end_context(99)

    def test_cid_reuse_after_end(self):
        nsf = make()
        a = nsf.begin_context(cid=3)
        nsf.end_context(a)
        b = nsf.begin_context(cid=3)
        nsf.switch_to(b)
        nsf.write(0, 11)
        assert nsf.read(0)[0] == 11

    def test_switch_to_unknown_raises(self):
        nsf = make()
        with pytest.raises(UnknownContextError):
            nsf.switch_to(42)


class TestAccessBasics:
    def test_read_after_write_hits(self):
        nsf = make()
        a = nsf.begin_context()
        nsf.switch_to(a)
        res = nsf.write(3, 99)
        assert not res.hit  # first write allocates the line
        value, res = nsf.read(3)
        assert value == 99
        assert res.hit

    def test_access_without_context_raises(self):
        nsf = make()
        with pytest.raises(NoCurrentContextError):
            nsf.read(0)

    def test_offset_out_of_range(self):
        nsf = make(context=8)
        a = nsf.begin_context()
        nsf.switch_to(a)
        with pytest.raises(RegisterRangeError):
            nsf.write(8, 1)
        with pytest.raises(RegisterRangeError):
            nsf.read(-1)

    def test_read_before_write_strict(self):
        nsf = make(strict=True)
        a = nsf.begin_context()
        nsf.switch_to(a)
        with pytest.raises(ReadBeforeWriteError):
            nsf.read(0)

    def test_read_before_write_lenient(self):
        nsf = make(strict=False)
        a = nsf.begin_context()
        nsf.switch_to(a)
        value, res = nsf.read(0)
        assert value == 0
        assert not res.hit

    def test_rewrite_hits(self):
        nsf = make()
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        res = nsf.write(0, 2)
        assert res.hit
        assert nsf.read(0)[0] == 2

    def test_explicit_cid_access(self):
        nsf = make()
        a = nsf.begin_context()
        b = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 5, cid=b)
        assert nsf.read(0, cid=b)[0] == 5
        assert nsf.current_cid == a


class TestSpillReload:
    def test_lru_victim_spilled_and_reloaded(self):
        nsf = make(registers=2, context=4)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 10)
        nsf.write(1, 11)
        nsf.write(2, 12)  # evicts r0 (LRU)
        assert not nsf.is_resident(a, 0)
        assert nsf.backing.contains(a, 0)
        value, res = nsf.read(0)  # demand reload
        assert value == 10
        assert not res.hit
        assert res.reloaded == 1
        assert nsf.stats.registers_spilled >= 1
        assert nsf.stats.registers_reloaded == 1

    def test_values_survive_many_round_trips(self):
        nsf = make(registers=4, context=16)
        a = nsf.begin_context()
        nsf.switch_to(a)
        for i in range(16):
            nsf.write(i, i * i)
        for i in range(16):
            assert nsf.read(i)[0] == i * i

    def test_interleaved_contexts_preserve_values(self):
        nsf = make(registers=8, context=8)
        cids = [nsf.begin_context() for _ in range(4)]
        for rounds in range(3):
            for k, cid in enumerate(cids):
                nsf.switch_to(cid)
                for i in range(6):
                    nsf.write(i, rounds * 100 + k * 10 + i)
        for k, cid in enumerate(cids):
            nsf.switch_to(cid)
            for i in range(6):
                assert nsf.read(i)[0] == 200 + k * 10 + i

    def test_switch_is_free_of_traffic(self):
        nsf = make(registers=8, context=4)
        a = nsf.begin_context()
        b = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        res = nsf.switch_to(b)
        assert res.reloaded == 0 and res.spilled == 0
        assert not res.switch_miss
        assert nsf.stats.switch_misses == 0

    def test_active_reload_counted_once(self):
        nsf = make(registers=2, context=4)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.write(1, 2)
        nsf.write(2, 3)          # spills r0
        nsf.read(0)              # reload + access
        nsf.read(0)              # plain hit
        assert nsf.stats.active_registers_reloaded == 1


class TestLineGranularity:
    def test_line_groups_registers(self):
        nsf = make(registers=8, context=8, line=4)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)  # allocates line 0 (offsets 0-3)
        res = nsf.write(3, 2)
        assert res.hit  # same line already allocated
        res = nsf.write(4, 3)
        assert not res.hit  # new line
        assert nsf.allocated_lines() == 2

    def test_valid_bit_replacement_within_line(self):
        # A read to an invalid slot of a resident line reloads only that
        # register (the paper's per-register valid-bit feature, §7.3).
        nsf = make(registers=4, context=8, line=2)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 10)
        nsf.write(1, 11)
        nsf.write(2, 12)
        nsf.write(3, 13)  # file full: lines (0,1) and (2,3)
        nsf.write(4, 14)  # evicts line (0,1) -> spills 10, 11
        value, res = nsf.read(0)
        assert value == 10
        assert res.reloaded == 1  # only r0, not the whole line

    def test_line_scope_reloads_whole_line(self):
        nsf = make(registers=4, context=8, line=2, reload_scope="line")
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 10)
        nsf.write(1, 11)
        nsf.write(2, 12)
        nsf.write(4, 14)  # fills third line -> evicts line (0,1)
        value, res = nsf.read(0)
        assert value == 10
        assert res.reloaded == 2  # whole line moved
        assert nsf.stats.live_registers_reloaded == 2
        assert nsf.read(1)[0] == 11  # came back with the line

    def test_line_scope_counts_empty_slots(self):
        nsf = make(registers=4, context=8, line=2, reload_scope="line")
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 10)  # line (0,1), slot 1 never written
        nsf.write(2, 12)
        nsf.write(4, 14)  # evicts line (0,1): only r0 live
        nsf.read(0)
        assert nsf.stats.registers_reloaded == 2      # curve A counts both
        assert nsf.stats.live_registers_reloaded == 1  # curve B counts r0

    def test_free_register_releases_empty_line(self):
        nsf = make(registers=8, context=8, line=2)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.write(1, 2)
        nsf.free_register(0)
        assert nsf.allocated_lines() == 1
        nsf.free_register(1)
        assert nsf.allocated_lines() == 0
        assert nsf.active_register_count() == 0

    def test_freed_register_read_faults(self):
        nsf = make()
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.free_register(0)
        with pytest.raises(ReadBeforeWriteError):
            nsf.read(0)


class TestFetchOnWrite:
    def test_write_allocate_does_not_reload(self):
        nsf = make(registers=2, context=4)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.write(1, 2)
        nsf.write(2, 3)          # evict r0
        res = nsf.write(0, 9)    # write miss: allocate, no fetch
        assert res.reloaded == 0
        assert nsf.read(0)[0] == 9

    def test_fetch_on_write_reloads_line(self):
        nsf = make(registers=4, context=8, line=2, fetch_on_write=True)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 10)
        nsf.write(1, 11)
        nsf.write(2, 12)
        nsf.write(4, 14)         # evicts line (0,1)
        res = nsf.write(1, 99)   # fetch-on-write pulls the line back first
        assert res.reloaded == 2
        assert nsf.read(0)[0] == 10
        assert nsf.read(1)[0] == 99


class TestOccupancy:
    def test_active_count_tracks_valid_registers(self):
        nsf = make(registers=8, context=8)
        a = nsf.begin_context()
        nsf.switch_to(a)
        assert nsf.active_register_count() == 0
        nsf.write(0, 1)
        nsf.write(1, 2)
        assert nsf.active_register_count() == 2
        nsf.free_register(0)
        assert nsf.active_register_count() == 1

    def test_resident_contexts(self):
        nsf = make(registers=8, context=4)
        a = nsf.begin_context()
        b = nsf.begin_context()
        assert nsf.resident_context_count() == 0
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.switch_to(b)
        nsf.write(0, 2)
        assert nsf.resident_context_count() == 2
        assert nsf.resident_context_ids() == {a, b}

    def test_tick_integrates_occupancy(self):
        nsf = make(registers=8, context=8)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.write(1, 1)
        nsf.tick(10)
        assert nsf.stats.instructions == 10
        assert nsf.stats.occupancy_weighted == 20
        assert nsf.stats.utilization_avg == pytest.approx(2 / 8)
        assert nsf.stats.max_active_registers == 2

    def test_more_contexts_than_lines_is_fine(self):
        nsf = make(registers=4, context=4)
        cids = [nsf.begin_context() for _ in range(10)]
        for value, cid in enumerate(cids):
            nsf.switch_to(cid)
            nsf.write(0, value)
        for value, cid in enumerate(cids):
            nsf.switch_to(cid)
            assert nsf.read(0)[0] == value


class TestPolicies:
    def test_fifo_differs_from_lru(self):
        # With FIFO, touching r0 does not protect it from eviction.
        results = {}
        for policy in ("lru", "fifo"):
            nsf = make(registers=2, context=4, policy=policy)
            a = nsf.begin_context()
            nsf.switch_to(a)
            nsf.write(0, 0)
            nsf.write(1, 1)
            nsf.read(0)     # refresh r0 under LRU only
            nsf.write(2, 2)  # evicts r1 under LRU, r0 under FIFO
            results[policy] = nsf.is_resident(a, 0)
        assert results["lru"] and not results["fifo"]

    def test_random_policy_is_deterministic_per_seed(self):
        def run(seed):
            nsf = make(registers=4, context=16, policy="random",
                       policy_seed=seed)
            a = nsf.begin_context()
            nsf.switch_to(a)
            for i in range(16):
                nsf.write(i, i)
            return [nsf.is_resident(a, i) for i in range(16)]

        assert run(1) == run(1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make(policy="belady")


class TestCapacityEdge:
    def test_single_line_file(self):
        nsf = make(registers=1, context=4)
        a = nsf.begin_context()
        nsf.switch_to(a)
        nsf.write(0, 1)
        nsf.write(1, 2)  # evicts r0 immediately
        assert nsf.read(0)[0] == 1
        assert nsf.stats.registers_spilled >= 1

    def test_capacity_error_when_no_lines(self):
        with pytest.raises((CapacityError, ValueError)):
            NamedStateRegisterFile(num_registers=2, context_size=4,
                                   line_size=4)
