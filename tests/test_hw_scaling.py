"""Structural/scaling property tests for the chip models.

The constants are calibrated to the paper's anchor points, but the
*shapes* — monotonicity, which terms grow with what — are structural
claims; these tests pin them across the design space.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (
    CMOS_1200NM,
    RegisterFileGeometry,
    access_time_penalty,
    area_ratio,
    estimate_access_time,
    estimate_area,
)

rows_strategy = st.sampled_from([32, 64, 128, 256])
bits_strategy = st.sampled_from([16, 32, 64])
ports_strategy = st.tuples(st.integers(1, 4), st.integers(1, 3))


def geom(org, rows, bits, rd, wr, line=1):
    return RegisterFileGeometry(organization=org, rows=rows,
                                bits_per_row=bits, line_size=line,
                                read_ports=rd, write_ports=wr)


class TestAreaScaling:
    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy, bits=bits_strategy, ports=ports_strategy)
    def test_nsf_always_larger_than_segmented(self, rows, bits, ports):
        rd, wr = ports
        ratio = area_ratio(geom("nsf", rows, bits, rd, wr),
                           geom("segmented", rows, bits, rd, wr))
        assert ratio > 1.0

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy, bits=bits_strategy, ports=ports_strategy)
    def test_premium_shrinks_with_ports(self, rows, bits, ports):
        rd, wr = ports
        lean = area_ratio(geom("nsf", rows, bits, rd, wr),
                          geom("segmented", rows, bits, rd, wr))
        fat = area_ratio(geom("nsf", rows, bits, rd + 2, wr + 1),
                         geom("segmented", rows, bits, rd + 2, wr + 1))
        assert fat < lean

    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy, bits=bits_strategy, ports=ports_strategy)
    def test_area_monotone_in_every_dimension(self, rows, bits, ports):
        rd, wr = ports
        base = estimate_area(geom("nsf", rows, bits, rd, wr)).total
        assert estimate_area(
            geom("nsf", rows * 2, bits, rd, wr)).total > base
        assert estimate_area(
            geom("nsf", rows, bits * 2, rd, wr)).total > base
        assert estimate_area(
            geom("nsf", rows, bits, rd + 1, wr)).total > base

    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy, bits=bits_strategy)
    def test_components_positive(self, rows, bits):
        for org in ("nsf", "segmented"):
            report = estimate_area(geom(org, rows, bits, 2, 1))
            assert report.decode > 0
            assert report.logic > 0
            assert report.darray > 0


class TestTimingScaling:
    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy, bits=bits_strategy, ports=ports_strategy)
    def test_nsf_always_slower_but_never_wildly(self, rows, bits, ports):
        rd, wr = ports
        penalty = access_time_penalty(
            geom("nsf", rows, bits, rd, wr),
            geom("segmented", rows, bits, rd, wr),
        )
        assert 0.0 < penalty < 0.25

    @settings(max_examples=30, deadline=None)
    @given(bits=bits_strategy, ports=ports_strategy)
    def test_access_time_monotone_in_rows(self, bits, ports):
        rd, wr = ports
        small = estimate_access_time(geom("nsf", 32, bits, rd, wr)).total
        large = estimate_access_time(geom("nsf", 256, bits, rd, wr)).total
        assert large > small

    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy, ports=ports_strategy)
    def test_word_select_monotone_in_width(self, rows, ports):
        rd, wr = ports
        narrow = estimate_access_time(geom("nsf", rows, 16, rd, wr))
        wide = estimate_access_time(geom("nsf", rows, 64, rd, wr))
        assert wide.word_select > narrow.word_select

    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy, bits=bits_strategy)
    def test_penalty_lives_entirely_in_decode(self, rows, bits):
        nsf = estimate_access_time(geom("nsf", rows, bits, 2, 1))
        seg = estimate_access_time(geom("segmented", rows, bits, 2, 1))
        assert nsf.decode > seg.decode
        assert nsf.word_select == pytest.approx(seg.word_select)
        assert nsf.data_read == pytest.approx(seg.data_read)


class TestTagWidthStructure:
    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy, line=st.sampled_from([1, 2, 4]))
    def test_bigger_lines_mean_narrower_tags(self, rows, line):
        wide = geom("nsf", rows, 32, 2, 1, line=1)
        grouped = geom("nsf", rows, 32, 2, 1, line=line)
        assert grouped.tag_bits == wide.tag_bits - {1: 0, 2: 1, 4: 2}[line]

    def test_tag_width_drives_cam_cost(self):
        narrow = estimate_area(geom("nsf", 64, 32, 2, 1, line=4))
        wide = estimate_area(geom("nsf", 64, 32, 2, 1, line=1))
        assert wide.decode > narrow.decode
