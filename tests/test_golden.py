"""Tests for the golden-result regression harness."""

import json

import pytest

from repro.evalx import EXPERIMENTS
from repro.evalx.golden import (
    DEFAULT_DIR,
    GOLDEN_SCALE,
    GOLDEN_SEED,
    compare_goldens,
    write_goldens,
)


class TestHarness:
    def test_write_then_compare_clean(self, tmp_path):
        written = write_goldens(tmp_path, scale=0.25, seed=3)
        assert len(written) == len(EXPERIMENTS)
        assert compare_goldens(tmp_path) == []

    def test_detects_changed_value(self, tmp_path):
        write_goldens(tmp_path, scale=0.25, seed=3)
        path = tmp_path / "fig07.json"
        payload = json.loads(path.read_text())
        payload["rows"][0][1] = 999.0
        path.write_text(json.dumps(payload))
        deviations = compare_goldens(tmp_path)
        assert any("fig07 row 0" in d for d in deviations)

    def test_detects_missing_golden(self, tmp_path):
        write_goldens(tmp_path, scale=0.25, seed=3)
        (tmp_path / "fig09.json").unlink()
        deviations = compare_goldens(tmp_path)
        assert any("fig09" in d and "no golden" in d for d in deviations)

    def test_detects_header_change(self, tmp_path):
        write_goldens(tmp_path, scale=0.25, seed=3)
        path = tmp_path / "fig06.json"
        payload = json.loads(path.read_text())
        payload["headers"][0] = "Renamed"
        path.write_text(json.dumps(payload))
        deviations = compare_goldens(tmp_path)
        assert any("fig06" in d and "headers" in d for d in deviations)

    def test_empty_directory_reported(self, tmp_path):
        deviations = compare_goldens(tmp_path / "nothing")
        assert deviations and "no goldens" in deviations[0]

    def test_unknown_golden_reported(self, tmp_path):
        write_goldens(tmp_path, scale=0.25, seed=3)
        (tmp_path / "fig99.json").write_text("{}")
        deviations = compare_goldens(tmp_path)
        assert any("fig99" in d for d in deviations)


class TestCheckedInGoldens:
    """The repository's own goldens must match the current build."""

    def test_goldens_exist(self):
        assert DEFAULT_DIR.exists()
        assert len(list(DEFAULT_DIR.glob("*.json"))) == len(EXPERIMENTS)

    def test_build_matches_goldens(self):
        deviations = compare_goldens()
        assert deviations == [], "\n".join(deviations)

    def test_goldens_recorded_at_expected_scale(self):
        sample = json.loads(
            (DEFAULT_DIR / "table1.json").read_text()
        )
        assert sample["scale"] == GOLDEN_SCALE
        assert sample["seed"] == GOLDEN_SEED
