"""Tests for the ISA: registers, instructions, binary encoding."""

import pytest

from repro.isa import (
    EncodingError,
    Instruction,
    OPCODES,
    Program,
    SP,
    ZR,
    decode,
    encode,
    encode_program,
    decode_words,
    is_context_register,
    opcode_format,
    parse_register,
    register_name,
)


class TestRegisters:
    def test_context_register_range(self):
        assert is_context_register(0)
        assert is_context_register(31)
        assert not is_context_register(32)
        assert not is_context_register(-1)

    def test_names_roundtrip(self):
        for index in list(range(32)) + [SP, ZR]:
            assert parse_register(register_name(index)) == index

    def test_special_names(self):
        assert register_name(SP) == "sp"
        assert register_name(ZR) == "zr"

    def test_bad_name(self):
        for bad in ("r32", "x1", "", "r-1", "pc"):
            with pytest.raises(ValueError):
                parse_register(bad)

    def test_bad_index(self):
        with pytest.raises(ValueError):
            register_name(64)


class TestInstructionModel:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frob")

    def test_reads_writes_r_format(self):
        instr = Instruction("add", rd=1, rs1=2, rs2=3)
        assert instr.reads() == [2, 3]
        assert instr.writes() == [1]

    def test_reads_writes_memory(self):
        load = Instruction("lw", rd=1, rs1=SP, imm=4)
        assert load.reads() == [SP]
        assert load.writes() == [1]
        store = Instruction("sw", rd=1, rs1=SP, imm=4)
        assert set(store.reads()) == {1, SP}
        assert store.writes() == []

    def test_li_reads_nothing(self):
        assert Instruction("li", rd=1, imm=5).reads() == []

    def test_branch_reads(self):
        assert Instruction("beq", rs1=1, rs2=2, target=0).reads() == [1, 2]

    def test_out_reads_rd(self):
        assert Instruction("out", rd=3).reads() == [3]

    def test_str_forms(self):
        cases = [
            (Instruction("add", rd=1, rs1=2, rs2=3), "add r1, r2, r3"),
            (Instruction("addi", rd=1, rs1=SP, imm=-4), "addi r1, sp, -4"),
            (Instruction("li", rd=2, imm=7), "li r2, 7"),
            (Instruction("lw", rd=1, rs1=SP, imm=8), "lw r1, 8(sp)"),
            (Instruction("beq", rs1=1, rs2=ZR, target="loop"),
             "beq r1, zr, loop"),
            (Instruction("call", target="fib"), "call fib"),
            (Instruction("rfree", rd=5), "rfree r5"),
            (Instruction("ret"), "ret"),
        ]
        for instr, expected in cases:
            assert str(instr) == expected

    def test_program_listing_contains_labels(self):
        program = Program(
            instructions=[Instruction("nop"), Instruction("halt")],
            labels={"main": 0, "end": 1},
        )
        listing = program.listing()
        assert "main:" in listing and "end:" in listing
        assert len(program) == 2


class TestEncoding:
    def _roundtrip(self, instr):
        word = encode(instr)
        assert 0 <= word < (1 << 32)
        back = decode(word)
        assert back.op == instr.op
        return back

    def test_r_format_roundtrip(self):
        back = self._roundtrip(Instruction("xor", rd=5, rs1=31, rs2=ZR))
        assert (back.rd, back.rs1, back.rs2) == (5, 31, ZR)

    def test_i_format_negative_imm(self):
        back = self._roundtrip(Instruction("addi", rd=1, rs1=SP, imm=-8192))
        assert back.imm == -8192

    def test_m_format(self):
        back = self._roundtrip(Instruction("sw", rd=2, rs1=SP, imm=12))
        assert (back.rd, back.rs1, back.imm) == (2, SP, 12)

    def test_branch_roundtrip(self):
        back = self._roundtrip(Instruction("blt", rs1=1, rs2=2, target=100))
        assert back.target == 100

    def test_jump_roundtrip(self):
        back = self._roundtrip(Instruction("call", target=12345))
        assert back.target == 12345

    def test_n_and_u_roundtrip(self):
        assert self._roundtrip(Instruction("halt")).op == "halt"
        assert self._roundtrip(Instruction("rfree", rd=9)).rd == 9

    def test_every_opcode_roundtrips(self):
        for op in OPCODES:
            fmt = opcode_format(op)
            if fmt == "R":
                instr = Instruction(op, rd=1, rs1=2, rs2=3)
            elif fmt in ("I", "M"):
                instr = Instruction(op, rd=1, rs1=2, imm=-5)
            elif fmt == "B":
                instr = Instruction(op, rs1=1, rs2=2, target=9)
            elif fmt == "J":
                instr = Instruction(op, target=3)
            elif fmt == "U":
                instr = Instruction(op, rd=4)
            else:
                instr = Instruction(op)
            word = encode(instr)
            assert decode(word).op == op

    def test_imm_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=1, imm=8192))
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=1, imm=-8193))

    def test_unresolved_target_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("j", target="loop"))

    def test_bad_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=64, rs1=0, rs2=0))

    def test_decode_bad_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_program_encode_decode(self):
        program = Program(
            instructions=[
                Instruction("li", rd=1, imm=3),
                Instruction("out", rd=1),
                Instruction("halt"),
            ],
            labels={},
        )
        words = encode_program(program)
        decoded = decode_words(words)
        assert [i.op for i in decoded] == ["li", "out", "halt"]
