"""Tests for cache-priced spill traffic (Figure 4's datapath)."""

import pytest

from repro.asm import assemble
from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.cpu import CPU, DirectMappedCache, PerfectCache
from repro.lang import compile_source

FIB = """
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { return fib(11); }
"""


def compiled_program():
    return compile_source(FIB).program


class TestMoveTracking:
    def test_moves_recorded_when_enabled(self):
        nsf = NamedStateRegisterFile(num_registers=2, context_size=4,
                                     track_moves=True)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        nsf.write(0, 1)
        nsf.write(1, 2)
        result = nsf.write(2, 3)          # evicts r0
        assert result.moved_out == [(cid, 0)]
        _, result = nsf.read(0)           # demand reload
        assert result.moved_in == [(cid, 0)]

    def test_moves_not_recorded_by_default(self):
        nsf = NamedStateRegisterFile(num_registers=2, context_size=4)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        nsf.write(0, 1)
        nsf.write(1, 2)
        result = nsf.write(2, 3)
        assert result.moved_out is None

    def test_segmented_frame_moves(self):
        seg = SegmentedRegisterFile(num_registers=4, context_size=4,
                                    track_moves=True)
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        seg.write(2, 3)
        result = seg.switch_to(b)
        assert set(result.moved_out) == {(a, 0), (a, 2)}
        result = seg.switch_to(a)
        assert set(result.moved_in) == {(a, 0), (a, 2)}

    def test_addresses_resolve_through_ctable(self):
        nsf = NamedStateRegisterFile(num_registers=2, context_size=4,
                                     track_moves=True)
        cid = nsf.begin_context(base_address=0x9000)
        nsf.switch_to(cid)
        nsf.write(0, 1)
        nsf.write(1, 2)
        result = nsf.write(2, 3)
        moved_cid, offset = result.moved_out[0]
        assert nsf.backing.address_of(moved_cid, offset) == 0x9000


class TestCPUPricing:
    def test_requires_tracking(self):
        nsf = NamedStateRegisterFile(num_registers=80, context_size=20)
        with pytest.raises(ValueError):
            CPU(compiled_program(), nsf, spill_via_cache=True)

    def test_functional_result_unchanged(self):
        nsf = NamedStateRegisterFile(num_registers=8, context_size=20,
                                     track_moves=True)
        cpu = CPU(compiled_program(), nsf, spill_via_cache=True)
        assert cpu.run().return_value == 89

    def test_spill_traffic_hits_the_cache(self):
        cache = DirectMappedCache()
        nsf = NamedStateRegisterFile(num_registers=8, context_size=20,
                                     track_moves=True)
        cpu = CPU(compiled_program(), nsf, cache=cache,
                  spill_via_cache=True)
        cpu.run()
        assert nsf.stats.registers_spilled > 0
        # Cache sees program loads/stores AND register traffic.
        program_only = DirectMappedCache()
        nsf2 = NamedStateRegisterFile(num_registers=8, context_size=20)
        cpu2 = CPU(compiled_program(), nsf2, cache=program_only)
        cpu2.run()
        assert cache.accesses > program_only.accesses

    def test_cold_cache_makes_spills_expensive(self):
        def run(cache):
            nsf = NamedStateRegisterFile(num_registers=8,
                                         context_size=20,
                                         track_moves=True)
            cpu = CPU(compiled_program(), nsf, cache=cache,
                      spill_via_cache=True)
            return cpu.run().cycles

        fast = run(PerfectCache())
        slow = run(DirectMappedCache(num_lines=4, words_per_line=1,
                                     miss_cycles=40))
        assert slow > fast

    def test_large_nsf_pays_nothing_either_way(self):
        cache = DirectMappedCache()
        nsf = NamedStateRegisterFile(num_registers=80, context_size=20,
                                     track_moves=True)
        cpu = CPU(compiled_program(), nsf, cache=cache,
                  spill_via_cache=True)
        result = cpu.run()
        assert result.return_value == 89
        assert nsf.stats.registers_spilled == 0
