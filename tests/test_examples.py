"""Every example script must run clean from the command line.

Examples are executable documentation; this keeps them from rotting.
Each runs as a subprocess with its internal assertions armed.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_EXAMPLES = {
    "quickstart.py",
    "multithreaded_pipeline.py",
    "compile_and_run.py",
    "paper_benchmarks.py",
    "hw_models.py",
    "cluster_simulation.py",
    "trace_sweep.py",
    "hardware_multithreading.py",
}

#: a few (script, must-appear-in-stdout) probes
OUTPUT_PROBES = {
    "quickstart.py": "the segmented file reloads",
    "compile_and_run.py": "result=9015",
    "multithreaded_pipeline.py": "identical outputs",
    "hardware_multithreading.py": "Same programs, same answers",
}


def test_expected_examples_present():
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert EXPECTED_EXAMPLES <= found


@pytest.mark.parametrize("script", sorted(EXPECTED_EXAMPLES))
def test_example_runs_clean(script):
    path = EXAMPLES_DIR / script
    args = [sys.executable, str(path)]
    if script == "paper_benchmarks.py":
        args.append("0.3")  # keep the slowest example quick in CI
    completed = subprocess.run(
        args, capture_output=True, text=True, timeout=420,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    probe = OUTPUT_PROBES.get(script)
    if probe:
        assert probe in completed.stdout
