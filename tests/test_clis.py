"""Tests for the command-line entry points."""

import pytest

from repro.asm.__main__ import main as asm_main
from repro.evalx.report import main as evalx_main
from repro.lang.__main__ import main as lang_main
from repro.workloads.__main__ import main as workloads_main

MC_SOURCE = """
func double(x) { return x * 2; }
func main() { return double(21); }
"""

ASM_SOURCE = """
main:
    li r1, 6
    li r2, 7
    mul r3, r1, r2
    out r3
    halt
"""


@pytest.fixture
def mc_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(MC_SOURCE)
    return str(path)


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(ASM_SOURCE)
    return str(path)


class TestLangCLI:
    def test_run_default(self, mc_file, capsys):
        assert lang_main([mc_file]) == 0
        out = capsys.readouterr().out
        assert "result: 42" in out
        assert "nsf" in out

    def test_run_segmented_with_asm(self, mc_file, capsys):
        assert lang_main([mc_file, "--model", "segmented",
                          "--show-asm"]) == 0
        out = capsys.readouterr().out
        assert "result: 42" in out
        assert "call double" in out

    def test_pipeline_and_rfree(self, mc_file, capsys):
        assert lang_main([mc_file, "--pipeline", "--rfree"]) == 0
        assert "result: 42" in capsys.readouterr().out

    def test_opt_level_zero(self, mc_file, capsys):
        assert lang_main([mc_file, "-O", "0"]) == 0
        assert "result: 42" in capsys.readouterr().out


class TestAsmCLI:
    def test_run(self, asm_file, capsys):
        assert asm_main([asm_file]) == 0
        out = capsys.readouterr().out
        assert "output: [42]" in out

    def test_segmented(self, asm_file, capsys):
        assert asm_main([asm_file, "--model", "segmented",
                         "--registers", "40"]) == 0
        assert "output: [42]" in capsys.readouterr().out

    def test_encode_listing(self, asm_file, capsys):
        assert asm_main([asm_file, "--encode"]) == 0
        out = capsys.readouterr().out
        assert "0000:" in out
        assert "li r1, 6" in out


class TestWorkloadsCLI:
    def test_list(self, capsys):
        assert workloads_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "GateSim" in out and "Wavefront" in out

    def test_run_single_model(self, capsys):
        assert workloads_main(["Quicksort", "--model", "nsf",
                               "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out

    def test_run_both_models(self, capsys):
        assert workloads_main(["Paraffins", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert out.count("verified=True") == 2


class TestEvalxCLI:
    def test_csv_format(self, capsys):
        assert evalx_main(["--experiment", "fig07",
                           "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "Organization,Decode" in out
        assert "NSF 32x128" in out
