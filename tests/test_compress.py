"""Tests for the compressed spill path: codecs, port, model wiring.

The round-trip property — ``decompress(compress(x)) == x`` for every
codec over arbitrary transfer units — is the subsystem's load-bearing
contract, so it runs under hypothesis.  The wiring tests then pin the
other half of the design: codec choice changes *bytes*, never
architectural behaviour.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CODEC_NAMES,
    BackingStore,
    CompressedSpillPort,
    CompressingBackingStore,
    NamedStateRegisterFile,
    NSF_COSTS,
    RawCodec,
    RetryingBackingStore,
    SegmentedRegisterFile,
    compress_spills,
    make_codec,
)
from repro.core.compress import WORD_BITS, ZeroElisionCodec
from repro.errors import BackingStoreFaultError, CompressionIntegrityError
from repro.workloads import get_workload
from repro.workloads.zipfile_bench import ZipFile, _reference_tokens

# -- round-trip property ------------------------------------------------------

# The register file stores Python objects: in-word ints take the packed
# path, everything else (None = dead slot, big ints, bools, floats,
# tuples) must survive via the dead mask or the escape path.
word_values = st.one_of(
    st.none(),
    st.integers(-(2 ** 40), 2 ** 40),
    st.booleans(),
    st.floats(allow_nan=False),
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
)
units = st.lists(word_values, max_size=24)


@pytest.mark.parametrize("name", CODEC_NAMES)
@given(values=units)
@settings(max_examples=60, deadline=None)
def test_roundtrip_arbitrary_units(name, values):
    codec = make_codec(name)
    block = codec.compress(values)
    assert codec.decompress(block) == values
    assert block.count == len(values)
    assert block.raw_bits == len(values) * WORD_BITS
    # The fallback bounds expansion to the mode bit.
    assert block.wire_bits <= block.raw_bits + 1


@pytest.mark.parametrize("name", CODEC_NAMES)
@pytest.mark.parametrize("values", [
    [],
    [0, 0, 0, 0, 0, 0, 0, 0],
    [7, 7, 7, 7],
    [5, -3, 120, 0],                      # mixed narrow widths
    [2 ** 31 - 1, -(2 ** 31), 0, 1],      # word-domain extremes
    [None, None, None],                   # all-dead unit
    [None, 12, None, -4],                 # live/dead interleave
    [1.5, True, (1, 2), 10 ** 20, "x"],   # all escapes
    [4096, 4097, 4099, 4102],             # base+delta friendly
    [0, 1, 1024, -1, 99999],              # dictionary hits and a miss
])
def test_roundtrip_edge_units(name, values):
    codec = make_codec(name)
    assert codec.decompress(codec.compress(values)) == values


def test_compression_wins_on_classic_patterns():
    zeros = [0] * 16
    narrow = [3, -2, 7, 0, 5, 1, -8, 2]
    pointers = [0x1000 + 4 * i for i in range(8)]
    assert make_codec("zero").compress(zeros).wire_bytes < 4 * 16
    assert make_codec("narrow").compress(narrow).wire_bytes < 4 * 8
    assert make_codec("basedelta").compress(pointers).wire_bytes < 4 * 8
    assert make_codec("dict").compress([0, 1, 2, 1024] * 4).wire_bytes \
        < 4 * 16
    # The identity codec is bit-exact raw width, never more.
    raw = make_codec("raw").compress(narrow)
    assert raw.wire_bits == raw.raw_bits


def test_dead_slots_ship_free_except_raw():
    unit = [None] * 15 + [42]
    raw = make_codec("raw").compress(unit)
    assert raw.wire_bytes == 4 * 16
    for name in CODEC_NAMES:
        if name == "raw":
            continue
        block = make_codec(name).compress(unit)
        assert block.wire_bytes < raw.wire_bytes, name


def test_make_codec_rejects_unknown():
    with pytest.raises(ValueError, match="unknown codec"):
        make_codec("lz77")
    codec = RawCodec()
    assert make_codec(codec) is codec


# -- shared corpus (ZipFile token stream) -------------------------------------

def token_corpus(seed=1, scale=0.5):
    """Flattened LZSS token words — a shared compressible test corpus.

    Reuses the ZipFile benchmark's synthetic text and reference LZSS
    tokenizer; the flattened ``(kind, a, b)`` stream has exactly the
    value mix spill-path codecs face in practice: small non-negative
    integers, heavy repeats (phrase matches) and zero runs (the
    distance field of literal tokens) — without being trivially
    constant.  It lives here, not in the workload module, because
    table1's static metrics count that module's source verbatim.
    """
    spec = ZipFile().build(seed, scale)
    words = []
    for token in _reference_tokens(spec["text"]):
        words.extend(token)
    return words


def test_token_corpus_is_representative():
    words = token_corpus(seed=1, scale=0.5)
    assert len(words) > 100
    assert all(isinstance(w, int) for w in words)
    assert 0 in words                  # literal tokens carry a zero field
    assert max(words) < 2 ** 16        # small values: codecs should win


@pytest.mark.parametrize("name", [n for n in CODEC_NAMES if n != "raw"])
def test_codecs_compress_the_corpus(name):
    words = token_corpus(seed=1, scale=0.5)
    codec = make_codec(name)
    raw = wire = 0
    for start in range(0, len(words) - 8, 8):
        block = codec.compress(words[start:start + 8])
        assert codec.decompress(block) == words[start:start + 8]
        raw += block.raw_bytes
        wire += block.wire_bytes
    assert wire < raw, f"{name} failed to shrink the token corpus"


# -- the port -----------------------------------------------------------------

def test_port_measures_shadows_broadside():
    port = CompressedSpillPort(codec="raw",
                               shadow_codecs=["narrow", "zero", "raw"])
    assert port.codec_names == ("raw", "narrow", "zero")  # deduped
    record = port.transmit([1, 2, 3, 0], spill=True)
    port.transmit([0, 0, 0, 0], spill=False)
    assert record.codec == "raw" and record.raw_bytes == 16
    for name in port.codec_names:
        cs = port.stats_for(name)
        assert cs.spill_units == 1 and cs.reload_units == 1
        assert cs.words_spilled == 4 and cs.words_reloaded == 4
        assert cs.raw_spill_bytes == 16 and cs.raw_reload_bytes == 16
    assert port.stats_for("raw").wire_spill_bytes == 16
    assert port.stats_for("narrow").wire_spill_bytes < 16
    assert port.stats_for("zero").wire_reload_bytes < 16
    assert port.stats_for("zero").reload_ratio > 1.0


def test_port_verify_catches_corruption():
    class BrokenCodec(ZeroElisionCodec):
        name = "broken"

        def _decode_words(self, state, count):
            out = super()._decode_words(state, count)
            if out:
                out[0] ^= 1
            return out

    unit = [0, 0, 0, 0, 0, 0, 2, 3]  # compressible, so decode runs
    port = CompressedSpillPort(codec=BrokenCodec())
    with pytest.raises(CompressionIntegrityError) as info:
        port.transmit(unit, spill=True)
    assert info.value.codec == "broken"
    assert info.value.sent == unit
    # With verification off the corruption passes silently (the user
    # asked for speed over checking); bytes still get counted.
    port = CompressedSpillPort(codec=BrokenCodec(), verify=False)
    port.transmit(unit, spill=True)
    assert port.stats_for("broken").spill_units == 1


# -- backing-store wrapper ----------------------------------------------------

def test_compressing_store_roundtrips_and_forwards():
    store = CompressingBackingStore(codec="narrow")
    record = store.spill_unit("ctx", [(0, 5), (1, -3)], dead_words=2)
    assert record.words == 4 and record.raw_bytes == 16
    assert record.wire_bytes < 16
    # Storage stays word-granular underneath.
    assert store.contains("ctx", 0) and store.contains("ctx", 1)
    values, record = store.reload_unit("ctx", [0, 1], dead_words=2)
    assert values == [5, -3]
    assert record.raw_bytes == 16
    assert len(store) == 2  # __len__ forwards to the inner store


def test_retrying_store_routes_units_through_fault_injection():
    flaky = RetryingBackingStore(BackingStore(), max_retries=2,
                                 fault_rate=0.999, seed=7)
    with pytest.raises(BackingStoreFaultError):
        flaky.spill_unit("ctx", [(0, 1)])
    assert flaky.transient_faults > 0
    with pytest.raises(BackingStoreFaultError):
        flaky.reload_unit("ctx", [0])
    # A reliable port passes units through to the inner store intact.
    steady = RetryingBackingStore(BackingStore(), max_retries=1)
    steady.spill_unit("ctx", [(0, 9), (3, 8)], dead_words=1)
    values, record = steady.reload_unit("ctx", [0, 3], dead_words=1)
    assert values == [9, 8] and record.words == 3


# -- model wiring and architectural invariance --------------------------------

def _run_workload(model, codec=None):
    port = None
    if codec is not None:
        port = compress_spills(model, codec=codec)
    get_workload("GateSim").run(model, scale=0.25, seed=5)
    return model.stats.snapshot(), port


BYTE_FIELDS = ("raw_bytes_spilled", "raw_bytes_reloaded",
               "wire_bytes_spilled", "wire_bytes_reloaded")


def _pressured_nsf():
    return NamedStateRegisterFile(num_registers=40, context_size=20,
                                  line_size=2)


def _pressured_seg():
    return SegmentedRegisterFile(num_registers=40, context_size=20,
                                 spill_mode="frame")


@pytest.mark.parametrize("make_model", [_pressured_nsf, _pressured_seg],
                         ids=["nsf", "segmented"])
def test_codec_choice_never_changes_architecture(make_model):
    """The cross-validation contract: compression is invisible above
    the wire.  Hit/miss/spill counts are identical whatever the codec;
    only the four byte counters may move."""
    baseline, _ = _run_workload(make_model())
    raw_run, _ = _run_workload(make_model(), codec="raw")
    # The identity codec reproduces an unwrapped run bit for bit.
    assert raw_run == baseline
    for codec in CODEC_NAMES:
        snap, port = _run_workload(make_model(), codec=codec)
        for field, value in baseline.items():
            if field in BYTE_FIELDS:
                continue
            assert snap[field] == value, (codec, field)
        assert snap["raw_bytes_spilled"] == baseline["raw_bytes_spilled"]
        assert snap["raw_bytes_spilled"] > 0
        cs = port.stats_for(codec)
        assert snap["wire_bytes_spilled"] == cs.wire_spill_bytes
        assert snap["wire_bytes_reloaded"] == cs.wire_reload_bytes
        if codec == "raw":
            assert snap["wire_bytes_spilled"] == snap["raw_bytes_spilled"]


def test_byte_stats_feed_ratio_properties():
    model = _pressured_nsf()
    _, port = _run_workload(model, codec="narrow")
    stats = model.stats
    assert stats.raw_bytes_spilled == 4 * stats.registers_spilled
    assert stats.wire_bytes_spilled < stats.raw_bytes_spilled
    assert stats.spill_compression_ratio > 1.0
    assert 0.0 < stats.wire_traffic_fraction < 1.0
    assert stats.wire_bytes_per_instruction > 0.0
    # Port and model agree on the primary codec's traffic.
    assert port.stats_for("narrow").wire_spill_bytes == \
        stats.wire_bytes_spilled


# -- cost model ---------------------------------------------------------------

def test_wire_cycles_price_the_bandwidth_latency_trade():
    model = _pressured_nsf()
    _run_workload(model, codec="narrow")
    stats = model.stats
    free_engine = NSF_COSTS  # zero-latency codec, 4 B/cycle port
    assert free_engine.wire_cycles(stats, compressed=False) == \
        (stats.raw_bytes_spilled + stats.raw_bytes_reloaded) / 4.0
    assert free_engine.wire_cycles(stats) < \
        free_engine.wire_cycles(stats, compressed=False)
    assert free_engine.wire_cycles_saved(stats) > 0

    priced = NSF_COSTS.with_compression(compress_unit_cycles=2.0,
                                        decompress_unit_cycles=2.0)
    assert priced.wire_cycles(stats) > free_engine.wire_cycles(stats)
    # Uncompressed pricing never pays codec latency.
    assert priced.wire_cycles(stats, compressed=False) == \
        free_engine.wire_cycles(stats, compressed=False)

    wide = NSF_COSTS.with_compression(0.0, 0.0,
                                      spill_port_bytes_per_cycle=8.0)
    assert wide.wire_cycles(stats) == free_engine.wire_cycles(stats) / 2
    # An absurdly slow engine can lose: saved cycles go negative.
    slow = NSF_COSTS.with_compression(compress_unit_cycles=10_000.0,
                                      decompress_unit_cycles=10_000.0)
    assert slow.wire_cycles_saved(stats) < 0
    # Existing pricing is untouched: traffic_cycles never sees bytes.
    assert dataclasses.replace(NSF_COSTS).traffic_cycles(stats) == \
        NSF_COSTS.traffic_cycles(stats)
