"""Tests for the nine Table-1 benchmarks.

Every benchmark must produce the *same verified answer* on the NSF, the
segmented file and the conventional file — the models hold live program
data, so this is an end-to-end functional check of spill/reload paths.
"""

import pytest

from repro.core import (
    ConventionalRegisterFile,
    NamedStateRegisterFile,
    SegmentedRegisterFile,
)
from repro.workloads import (
    ALL_WORKLOADS,
    PARALLEL_WORKLOADS,
    SEQUENTIAL_WORKLOADS,
    WorkloadVerificationError,
    get_workload,
    workload_names,
)
from repro.workloads.gamteb import _transport
from repro.workloads.paraffins import KNOWN_RADICALS, radical_counts
from repro.workloads.zipfile_bench import _huffman_bits, _reference_tokens

SCALE = 0.4  # keep the full matrix fast in CI


def _registers_for(workload):
    return 80 if workload.kind == "sequential" else 128


def _models_for(workload):
    regs = _registers_for(workload)
    ctx = workload.context_size
    return [
        NamedStateRegisterFile(num_registers=regs, context_size=ctx),
        SegmentedRegisterFile(num_registers=regs, context_size=ctx),
        SegmentedRegisterFile(num_registers=regs, context_size=ctx,
                              spill_mode="live"),
        ConventionalRegisterFile(context_size=ctx),
    ]


class TestRegistry:
    def test_names(self):
        assert workload_names() == [
            "GateSim", "RTLSim", "ZipFile", "AS", "DTW", "Gamteb",
            "Paraffins", "Quicksort", "Wavefront",
        ]

    def test_get_workload_case_insensitive(self):
        assert get_workload("gatesim").name == "GateSim"

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("linpack")

    def test_partition(self):
        assert len(SEQUENTIAL_WORKLOADS) == 3
        assert len(PARALLEL_WORKLOADS) == 6

    def test_context_sizes(self):
        for cls in SEQUENTIAL_WORKLOADS:
            assert cls().context_size == 20
        for cls in PARALLEL_WORKLOADS:
            assert cls().context_size == 32


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
class TestFunctionalOnAllModels:
    def test_verified_on_every_model(self, workload_cls):
        w = workload_cls()
        outputs = set()
        for rf in _models_for(w):
            result = w.run(rf, scale=SCALE, seed=3)
            assert result.verified, (w.name, rf.kind)
            outputs.add(result.output)
        assert len(outputs) == 1  # identical answer on every model

    def test_deterministic_across_runs(self, workload_cls):
        w = workload_cls()
        runs = []
        for _ in range(2):
            rf = NamedStateRegisterFile(
                num_registers=_registers_for(w), context_size=w.context_size
            )
            result = w.run(rf, scale=SCALE, seed=3)
            runs.append((result.output, rf.stats.instructions,
                         rf.stats.context_switches))
        assert runs[0] == runs[1]

    def test_different_seeds_change_input(self, workload_cls):
        w = workload_cls()
        spec_a = w.build(seed=1, scale=SCALE)
        spec_b = w.build(seed=2, scale=SCALE)
        if w.name == "Paraffins":  # input is size-only by construction
            assert spec_a == spec_b
        else:
            assert spec_a != spec_b

    def test_scale_grows_work(self, workload_cls):
        w = workload_cls()
        small = w.run(
            NamedStateRegisterFile(num_registers=_registers_for(w),
                                   context_size=w.context_size),
            scale=0.3, seed=3,
        )
        large = w.run(
            NamedStateRegisterFile(num_registers=_registers_for(w),
                                   context_size=w.context_size),
            scale=1.0, seed=3,
        )
        assert large.stats.instructions > small.stats.instructions

    def test_static_metrics(self, workload_cls):
        metrics = workload_cls().static_metrics()
        assert metrics["source_lines"] > 20
        assert metrics["static_instructions"] > 100


class TestPaperShape:
    """The qualitative relationships the paper's figures rest on."""

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                             ids=[w.name for w in ALL_WORKLOADS])
    def test_nsf_reloads_less_than_segmented(self, workload_cls):
        w = workload_cls()
        regs = _registers_for(w)
        nsf = NamedStateRegisterFile(num_registers=regs,
                                     context_size=w.context_size)
        seg = SegmentedRegisterFile(num_registers=regs,
                                    context_size=w.context_size)
        w.run(nsf, scale=SCALE, seed=3)
        w.run(seg, scale=SCALE, seed=3)
        assert (nsf.stats.registers_reloaded
                <= seg.stats.registers_reloaded)

    def test_sequential_nsf_holds_call_chain(self):
        # §7.2.2: "a moderate sized NSF can hold the entire call chain
        # of a large sequential program with almost no spilling".
        w = get_workload("GateSim")
        nsf = NamedStateRegisterFile(num_registers=80, context_size=20)
        w.run(nsf, scale=SCALE, seed=3)
        assert nsf.stats.reloads_per_instruction < 0.001

    def test_sequential_segmented_thrashes(self):
        w = get_workload("GateSim")
        seg = SegmentedRegisterFile(num_registers=80, context_size=20)
        w.run(seg, scale=SCALE, seed=3)
        assert seg.stats.reloads_per_instruction > 0.05

    def test_nsf_utilization_beats_segmented_sequential(self):
        for name in ("GateSim", "RTLSim", "ZipFile"):
            w = get_workload(name)
            nsf = NamedStateRegisterFile(num_registers=80, context_size=20)
            seg = SegmentedRegisterFile(num_registers=80, context_size=20)
            w.run(nsf, scale=SCALE, seed=3)
            w.run(seg, scale=SCALE, seed=3)
            assert nsf.stats.utilization_avg > seg.stats.utilization_avg

    def test_gamteb_is_fine_grained(self):
        w = get_workload("Gamteb")
        rf = NamedStateRegisterFile(num_registers=128, context_size=32)
        w.run(rf, scale=SCALE, seed=3)
        assert rf.stats.instructions_per_switch < 60

    def test_as_is_coarse_grained(self):
        w = get_workload("AS")
        rf = NamedStateRegisterFile(num_registers=128, context_size=32)
        w.run(rf, scale=SCALE, seed=3)
        assert rf.stats.instructions_per_switch > 200


class TestVerificationPlumbing:
    def test_corrupting_model_fails_verification(self):
        # A register file that loses writes must be caught.
        class LossyNSF(NamedStateRegisterFile):
            def _do_write(self, cid, offset, value, result):
                if self.stats.writes == 500:  # drop one write
                    value = value + 1 if isinstance(value, int) else value
                super()._do_write(cid, offset, value, result)

        w = get_workload("GateSim")
        rf = LossyNSF(num_registers=80, context_size=20)
        with pytest.raises(Exception):
            # Either the shadow check or the final verification fires.
            w.run(rf, scale=SCALE, seed=3)


class TestDomainGroundTruth:
    """Checks against known-good external values, not just self-consistency."""

    def test_radical_counts_match_oeis(self):
        counts = radical_counts(len(KNOWN_RADICALS) - 1)
        assert counts == KNOWN_RADICALS

    def test_huffman_cost_known_case(self):
        # freqs {a:5, b:2, c:1, d:1}: optimal code lengths 1,2,3,3
        assert _huffman_bits([5, 2, 1, 1]) == 5 * 1 + 2 * 2 + 1 * 3 + 1 * 3

    def test_huffman_single_symbol(self):
        assert _huffman_bits([0, 7, 0]) == 7

    def test_huffman_empty(self):
        assert _huffman_bits([0, 0]) == 0

    def test_lzss_roundtrip(self):
        text = [1, 2, 3, 1, 2, 3, 1, 2, 3, 4, 5, 4, 5, 4, 5]
        tokens = _reference_tokens(text)
        # Decode and compare.
        out = []
        for kind, a, b in tokens:
            if kind == 0:
                out.append(a)
            else:
                start = len(out) - b
                for k in range(a):
                    out.append(out[start + k])
        assert out == text
        assert any(kind == 1 for kind, _, _ in tokens)  # found matches

    def test_gamteb_transport_is_deterministic(self):
        a = _transport(123)
        b = _transport(123)
        assert a == b
        outcome, collisions, _ = a
        assert outcome in (0, 1, 2)
        assert collisions >= 0

    def test_gamteb_all_outcomes_reachable(self):
        outcomes = {_transport(s)[0] for s in range(200)}
        assert outcomes == {0, 1, 2}
