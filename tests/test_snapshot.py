"""Checkpoint/restore: round trips, adversarial states, rejection paths.

The snapshot contract under test: ``restore(capture())`` into a fresh
instance is *bit-exact* — the restored object's own capture hashes
identically, and any subsequent operation tail produces identical
state on both sides.  The framed serializer must reject every corrupt,
truncated or version-skewed blob loudly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activation import Memory, SequentialMachine
from repro.core import (
    BackingStore,
    ConventionalRegisterFile,
    NamedStateRegisterFile,
    ProtectedRegisterFile,
    RegFileStats,
    RetryingBackingStore,
    SegmentedRegisterFile,
    canonical_bytes,
    compress_spills,
    dumps,
    from_canonical_bytes,
    integrity_hash,
    loads,
)
from repro.core.faults import FaultyRegisterFile
from repro.cpu.cache import DirectMappedCache
from repro.errors import (
    ReproError,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.runtime.cid import CIDAllocator
from repro.runtime.scheduler import ThreadMachine

# -- the canonical serializer ------------------------------------------------


class TestCanonicalBytes:
    def test_deterministic_across_dict_insertion_order(self):
        assert (canonical_bytes({"a": 1, "b": [2, 3]})
                == canonical_bytes({"b": [2, 3], "a": 1}))

    def test_tuple_and_list_are_distinct(self):
        assert canonical_bytes((1, 2)) != canonical_bytes([1, 2])
        assert from_canonical_bytes(canonical_bytes((1, 2))) == (1, 2)
        assert from_canonical_bytes(canonical_bytes([1, 2])) == [1, 2]

    def test_bool_and_int_are_distinct(self):
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)
        assert from_canonical_bytes(canonical_bytes(True)) is True

    def test_sets_are_rejected(self):
        # Iteration order of a set is process-dependent; snapshots must
        # carry sorted lists instead.
        with pytest.raises(SnapshotError):
            canonical_bytes({1, 2, 3})
        with pytest.raises(SnapshotError):
            canonical_bytes(frozenset([1]))

    def test_unknown_types_are_rejected(self):
        with pytest.raises(SnapshotError):
            canonical_bytes(object())

    def test_trailing_bytes_are_rejected(self):
        blob = canonical_bytes([1, 2])
        with pytest.raises(SnapshotIntegrityError):
            from_canonical_bytes(blob + b"x")

    def test_representative_round_trip(self):
        value = {
            "kind": "nsf",
            "rng": (3, tuple(range(5)), None),
            "values": [[[1, 0], 42], [[1, 1], -7]],
            "f": 0.1,
            "raw": b"\x00\xff",
            "flag": True,
            "none": None,
        }
        assert from_canonical_bytes(canonical_bytes(value)) == value


CANONICAL_LEAVES = (st.none() | st.booleans()
                    | st.integers(-2**70, 2**70)
                    | st.floats(allow_nan=False)
                    | st.text(max_size=20) | st.binary(max_size=20))

CANONICAL_VALUES = st.recursive(
    CANONICAL_LEAVES,
    lambda children: (st.lists(children, max_size=5)
                      | st.tuples(children, children)
                      | st.dictionaries(st.text(max_size=8), children,
                                        max_size=5)),
    max_leaves=20,
)


class TestFramedSnapshot:
    STATE = {"kind": "t", "values": [[0, 1], [1, 2]], "rng": (1, 2)}

    def test_round_trip(self):
        assert loads(dumps(self.STATE)) == self.STATE

    def test_truncation_is_rejected(self):
        blob = dumps(self.STATE)
        for cut in (3, 8, 30, len(blob) - 1):
            with pytest.raises(SnapshotIntegrityError):
                loads(blob[:cut])

    def test_bad_magic_is_rejected(self):
        blob = dumps(self.STATE)
        with pytest.raises(SnapshotIntegrityError):
            loads(b"X" + blob[1:])

    def test_version_skew_is_rejected(self):
        blob = bytearray(dumps(self.STATE))
        blob[7] = 99  # version byte follows the 7-byte magic
        with pytest.raises(SnapshotVersionError) as excinfo:
            loads(bytes(blob))
        assert excinfo.value.found == 99

    def test_payload_corruption_is_rejected(self):
        blob = bytearray(dumps(self.STATE))
        blob[-2] ^= 0x40
        with pytest.raises(SnapshotIntegrityError):
            loads(bytes(blob))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 255))
    def test_any_single_byte_flip_is_detected(self, position, mask):
        blob = bytearray(dumps(self.STATE))
        blob[position % len(blob)] ^= mask
        with pytest.raises(SnapshotError):
            loads(bytes(blob))

    @settings(max_examples=40, deadline=None)
    @given(CANONICAL_VALUES)
    def test_canonical_values_round_trip(self, value):
        assert from_canonical_bytes(canonical_bytes(value)) == value
        assert loads(dumps(value)) == value


# -- register-file models ----------------------------------------------------

MODEL_FACTORIES = {
    "nsf-lru-line1": lambda: NamedStateRegisterFile(
        num_registers=16, context_size=8, line_size=1),
    "nsf-fifo-line2": lambda: NamedStateRegisterFile(
        num_registers=16, context_size=8, line_size=2, policy="fifo"),
    "nsf-random-line4": lambda: NamedStateRegisterFile(
        num_registers=16, context_size=8, line_size=4, policy="random",
        reload_scope="line"),
    "nsf-dribble-fetchw": lambda: NamedStateRegisterFile(
        num_registers=16, context_size=8, line_size=2,
        fetch_on_write=True, spill_watermark=2),
    "seg-frame": lambda: SegmentedRegisterFile(
        num_registers=32, context_size=8),
    "seg-live": lambda: SegmentedRegisterFile(
        num_registers=32, context_size=8, spill_mode="live",
        policy="random"),
    "conventional": lambda: ConventionalRegisterFile(
        num_registers=8, context_size=8),
}


def warm(model, contexts=5, writes=24):
    """Drive a model into an adversarial mid-flight state.

    More live registers than the file holds, so lines have been
    evicted and reloaded; one context is dead; reads in reverse order
    shuffle the victim policy; ticks let any dribble-back drain partly.
    """
    cids = [model.begin_context() for _ in range(contexts)]
    for k, cid in enumerate(cids):
        model.switch_to(cid)
        for i in range(writes):
            model.write(i % 8, k * 1000 + i, cid=cid)
        if hasattr(model, "tick"):
            model.tick()
    for cid in reversed(cids):
        model.read(0, cid=cid)
    model.end_context(cids[1])
    del cids[1]
    return cids


def tail(model, cids, salt=0):
    """A deterministic post-restore operation tail."""
    for k, cid in enumerate(cids):
        model.switch_to(cid)
        for i in range(10):
            model.write((i + salt) % 8, salt + k * 37 + i, cid=cid)
            model.read((i + salt) % 8, cid=cid)
    if hasattr(model, "tick"):
        model.tick()


def assert_bit_exact_round_trip(make_model):
    model = make_model()
    cids = warm(model)
    state = model.capture()
    assert loads(dumps(state)) == state

    fresh = make_model()
    fresh.restore(state)
    assert integrity_hash(fresh.capture()) == integrity_hash(state)

    # The restored file must evolve identically to the original —
    # victim choices, spills and stats included.
    tail(model, cids, salt=3)
    tail(fresh, cids, salt=3)
    assert integrity_hash(fresh.capture()) == integrity_hash(
        model.capture())
    assert fresh.stats.snapshot() == model.stats.snapshot()


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
def test_model_round_trip_is_bit_exact(name):
    assert_bit_exact_round_trip(MODEL_FACTORIES[name])


def test_full_file_round_trip(self=None):
    # Every line occupied, every access a fight: capture at maximum
    # pressure.
    def make():
        return NamedStateRegisterFile(num_registers=4, context_size=8,
                                      line_size=1)

    model = make()
    a, b = model.begin_context(), model.begin_context()
    for i in range(8):
        model.write(i, i, cid=a)
        model.write(i, i + 100, cid=b)
    state = model.capture()
    fresh = make()
    fresh.restore(state)
    for i in range(8):
        assert fresh.read(i, cid=a)[0] == model.read(i, cid=a)[0]
    assert integrity_hash(fresh.capture()) == integrity_hash(
        model.capture())


def test_restore_rejects_wrong_kind():
    nsf_state = NamedStateRegisterFile(num_registers=8,
                                       context_size=8).capture()
    with pytest.raises(SnapshotError):
        SegmentedRegisterFile(num_registers=8,
                              context_size=8).restore(nsf_state)


def test_restore_rejects_config_mismatch():
    state = NamedStateRegisterFile(num_registers=8, context_size=8,
                                   line_size=2).capture()
    with pytest.raises(SnapshotError):
        NamedStateRegisterFile(num_registers=8, context_size=8,
                               line_size=4).restore(state)
    with pytest.raises(SnapshotError):
        NamedStateRegisterFile(num_registers=16, context_size=8,
                               line_size=2).restore(state)


def test_stats_restore_is_strict():
    stats = RegFileStats()
    state = stats.capture()
    missing = dict(state)
    missing.pop("reads")
    with pytest.raises(SnapshotError):
        RegFileStats().restore(missing)
    extra = dict(state)
    extra["bogus_counter"] = 1
    with pytest.raises(SnapshotError):
        RegFileStats().restore(extra)


# -- wrapper stacks ----------------------------------------------------------


def make_protected_stack():
    inner = NamedStateRegisterFile(num_registers=16, context_size=8,
                                   line_size=2)
    inner.backing = RetryingBackingStore(
        inner.backing, max_retries=8, fault_rate=0.2, seed=3,
    ).attach_stats(inner.stats)
    port = compress_spills(inner, codec="raw", shadow_codecs=["zero"])
    faulty = FaultyRegisterFile(inner, "flip_read_bit",
                                trigger_at=10**9)
    return ProtectedRegisterFile(faulty, level="ecc"), port


def test_wrapper_stack_round_trip_is_bit_exact():
    model, _ = make_protected_stack()
    cids = warm(model)
    state = model.capture()
    assert loads(dumps(state)) == state

    fresh, _ = make_protected_stack()
    fresh.restore(state)
    assert integrity_hash(fresh.capture()) == integrity_hash(state)

    tail(model, cids, salt=5)
    tail(fresh, cids, salt=5)
    assert integrity_hash(fresh.capture()) == integrity_hash(
        model.capture())


def test_wrapper_stack_restore_rejects_codec_mismatch():
    model, _ = make_protected_stack()
    warm(model)
    state = model.capture()

    inner = NamedStateRegisterFile(num_registers=16, context_size=8,
                                   line_size=2)
    inner.backing = RetryingBackingStore(
        inner.backing, max_retries=8, fault_rate=0.2, seed=3,
    ).attach_stats(inner.stats)
    compress_spills(inner, codec="raw", shadow_codecs=["narrow"])
    faulty = FaultyRegisterFile(inner, "flip_read_bit",
                                trigger_at=10**9)
    other = ProtectedRegisterFile(faulty, level="ecc")
    with pytest.raises(SnapshotError):
        other.restore(state)


# -- machines, caches, allocators -------------------------------------------


def _seq_machine():
    regfile = NamedStateRegisterFile(num_registers=16, context_size=8)
    return SequentialMachine(regfile, cid_bits=6)


def _fib_body(machine):
    def body(act):
        a, b, t = act.alloc_many(3)
        act.let(a, 0)
        act.let(b, 1)
        for _ in range(8):
            act.add(t, a, b)
            act.mov(a, b)
            act.mov(b, t)
        return act.test(b)

    return body


def test_sequential_machine_round_trip():
    machine = _seq_machine()
    assert machine.run(_fib_body(machine)) == 34
    state = machine.capture()
    assert loads(dumps(state)) == state

    fresh = _seq_machine()
    fresh.restore(state)
    assert integrity_hash(fresh.capture()) == integrity_hash(state)
    assert fresh.run(_fib_body(fresh)) == machine.run(
        _fib_body(machine))
    assert integrity_hash(fresh.capture()) == integrity_hash(
        machine.capture())


def test_sequential_machine_refuses_mid_call_capture():
    machine = _seq_machine()

    def body(act):
        a = act.alloc()
        act.let(a, 1)
        with pytest.raises(SnapshotError):
            machine.capture()
        return act.test(a)

    assert machine.run(body) == 1


def _thread_machine():
    regfile = NamedStateRegisterFile(num_registers=32, context_size=8)
    return ThreadMachine(regfile, cid_bits=6)


def test_thread_machine_round_trip_when_quiescent():
    machine = _thread_machine()

    def worker(act):
        a = act.alloc()
        act.let(a, 5)
        yield machine.remote()
        act.addi(a, a, 1)
        return act.test(a)

    thread = machine.spawn(worker)
    machine.run()
    assert thread.result.value == 6
    state = machine.capture()

    fresh = _thread_machine()
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)

    # Identical follow-on work on both machines stays identical.
    for m in (machine, fresh):
        t = m.spawn(worker)
        m.run()
        assert t.result.value == 6
    assert integrity_hash(fresh.capture()) == integrity_hash(
        machine.capture())


def test_thread_machine_refuses_live_thread_capture():
    machine = _thread_machine()

    def worker(act):
        a = act.alloc()
        act.let(a, 1)
        yield machine.remote()
        return act.test(a)

    machine.spawn(worker)
    with pytest.raises(SnapshotError):
        machine.capture()


def test_cache_round_trip():
    cache = DirectMappedCache(num_lines=4, words_per_line=2)
    for address in (0, 8, 16, 0, 8, 1024, 0):
        cache.access(address)
    state = cache.capture()
    fresh = DirectMappedCache(num_lines=4, words_per_line=2)
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)
    assert fresh.access(0) == cache.access(0)
    assert fresh.access(2048) == cache.access(2048)


def test_cid_allocator_round_trip():
    allocator = CIDAllocator(bits=4)
    cids = [allocator.alloc() for _ in range(6)]
    allocator.free(cids[2])
    allocator.free(cids[4])
    state = allocator.capture()
    fresh = CIDAllocator(bits=4)
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)
    # The free list is LIFO; allocation order must survive the trip.
    assert fresh.alloc() == allocator.alloc()
    assert fresh.alloc() == allocator.alloc()


def test_memory_round_trip():
    memory = Memory()
    base = memory.alloc(8)
    for i in range(8):
        memory.store(base + i, i * 3)
    state = memory.capture()
    fresh = Memory()
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)
    assert fresh.alloc(4) == memory.alloc(4)


def test_backing_store_round_trip_preserves_insertion_order():
    store = BackingStore()
    for cid, offset in ((3, 1), (1, 9), (2, 0), (1, 2)):
        store.spill(cid, offset, cid * 100 + offset)
    state = store.capture()
    fresh = BackingStore()
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)
    assert fresh.reload(1, 9) == 109


# -- hypothesis: op sequences round-trip from any reachable state ------------

OPS = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 7),
              st.integers(0, 999)),
    max_size=60,
)


def apply_ops(model, cids, ops):
    """Replay an arbitrary op tape; invalid ops are no-ops on both sides."""
    for op, reg, val in ops:
        if not cids:
            cids.append(model.begin_context())
        cid = cids[val % len(cids)]
        try:
            if op == 0:
                model.write(reg, val, cid=cid)
            elif op == 1:
                model.read(reg, cid=cid)
            elif op == 2:
                model.switch_to(cid)
            elif op == 3 and len(cids) < 6:
                cids.append(model.begin_context())
            elif op == 4 and len(cids) > 1:
                model.end_context(cids.pop(val % len(cids)))
        except ReproError:
            pass


@settings(max_examples=25, deadline=None)
@given(OPS, OPS)
def test_property_nsf_round_trip_from_any_state(prefix, suffix):
    def make():
        return NamedStateRegisterFile(num_registers=8, context_size=8,
                                      line_size=2, spill_watermark=1)

    model = make()
    cids = warm_cids = []
    apply_ops(model, warm_cids, prefix)
    state = model.capture()

    fresh = make()
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)

    apply_ops(model, list(cids), suffix)
    apply_ops(fresh, list(cids), suffix)
    assert integrity_hash(fresh.capture()) == integrity_hash(
        model.capture())


@settings(max_examples=15, deadline=None)
@given(OPS, OPS)
def test_property_segmented_round_trip_from_any_state(prefix, suffix):
    def make():
        return SegmentedRegisterFile(num_registers=16, context_size=8,
                                     policy="random")

    model = make()
    cids = []
    apply_ops(model, cids, prefix)
    state = model.capture()

    fresh = make()
    fresh.restore(loads(dumps(state)))
    assert integrity_hash(fresh.capture()) == integrity_hash(state)

    apply_ops(model, list(cids), suffix)
    apply_ops(fresh, list(cids), suffix)
    assert integrity_hash(fresh.capture()) == integrity_hash(
        model.capture())
