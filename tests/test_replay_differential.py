"""Replay-driven sweeps are bit-identical to direct execution.

The trace cache's contract: an experiment fed by cached-trace replay
produces exactly the rows direct execution produces — not close, the
same.  This suite pins that for a run_pair experiment (fig09), a
single-model experiment (table1), and the committed golden itself, so
a regression in the recorder, the packed format, the cache keying or
the replay engine cannot hide behind the cache.
"""

import json
import pathlib

import pytest

from repro.evalx import fig09, table1
from repro.evalx.golden import DEFAULT_DIR, GOLDEN_SCALE, GOLDEN_SEED
from repro.trace import cache as trace_cache

SCALE = 0.2
SEED = 5


@pytest.fixture(autouse=True)
def _private_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(trace_cache.ENV_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(trace_cache.ENV_DISABLE, raising=False)
    trace_cache._memo.clear()
    trace_cache.STATS.reset()
    yield
    trace_cache._memo.clear()
    trace_cache.STATS.reset()


def _direct(module, monkeypatch):
    monkeypatch.setenv(trace_cache.ENV_DISABLE, "1")
    try:
        return module.run(scale=SCALE, seed=SEED)
    finally:
        monkeypatch.delenv(trace_cache.ENV_DISABLE)


def test_fig09_replay_equals_direct(monkeypatch):
    direct = _direct(fig09, monkeypatch)
    assert trace_cache.STATS.records == 0
    replayed = fig09.run(scale=SCALE, seed=SEED)
    assert trace_cache.STATS.records > 0  # the cache path really ran
    assert replayed.rows == direct.rows
    # second pass replays from cache, still identical
    warm = fig09.run(scale=SCALE, seed=SEED)
    assert warm.rows == direct.rows


def test_table1_replay_equals_direct(monkeypatch):
    direct = _direct(table1, monkeypatch)
    replayed = table1.run(scale=SCALE, seed=SEED)
    assert replayed.rows == direct.rows


def test_table1_replay_matches_committed_golden():
    golden = json.loads(
        (pathlib.Path(DEFAULT_DIR) / "table1.json").read_text()
    )
    table = table1.run(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    assert trace_cache.STATS.records > 0
    assert table.rows == [list(row) for row in golden["rows"]]
