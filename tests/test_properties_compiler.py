"""Property tests: randomly generated programs through the compiler.

A generator builds small imperative programs (assignments, ifs, a
bounded loop) together with a straight Python transliteration; the
compiled program must compute exactly what Python computes, at any
register pressure, optimization level, and with rfree on or off.
"""

from hypothesis import given, settings, strategies as st

from repro.core import NamedStateRegisterFile
from repro.lang import run_source


@st.composite
def programs(draw):
    """Returns (mini-C source, python-callable oracle)."""
    num_vars = draw(st.integers(2, 5))
    names = [f"v{i}" for i in range(num_vars)]
    inits = [draw(st.integers(-9, 9)) for _ in names]

    statements = []     # mini-C lines
    py_lines = []       # python transliteration
    for name, value in zip(names, inits):
        statements.append(f"var {name} = {value};")
        py_lines.append(f"{name} = {value}")

    def expr():
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names + [str(draw(st.integers(1, 9)))]))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"{a} {op} {b}"

    num_statements = draw(st.integers(1, 6))
    for _ in range(num_statements):
        kind = draw(st.integers(0, 2))
        target = draw(st.sampled_from(names))
        if kind == 0:
            e = expr()
            statements.append(f"{target} = {e};")
            py_lines.append(f"{target} = {e}")
        elif kind == 1:
            cond_a = draw(st.sampled_from(names))
            cond_op = draw(st.sampled_from(["<", ">", "=="]))
            cond_b = draw(st.integers(-5, 5))
            e = expr()
            statements.append(
                f"if ({cond_a} {cond_op} {cond_b}) "
                f"{{ {target} = {e}; }}"
            )
            py_lines.append(
                f"if {cond_a} {cond_op} {cond_b}: {target} = {e}"
            )
        else:
            # A bounded loop over a fresh counter.
            bound = draw(st.integers(1, 6))
            e = expr()
            counter = f"c{len(statements)}"
            statements.append(
                f"var {counter} = 0; "
                f"while ({counter} < {bound}) {{ "
                f"{target} = {e}; "
                f"{counter} = {counter} + 1; }}"
            )
            py_lines.append(
                f"for _ in range({bound}): {target} = {e}"
            )
    result_expr = " + ".join(names)
    statements.append(f"return {result_expr};")
    source = "func main() { " + "\n".join(statements) + " }"

    py_lines.append(f"__result__ = {result_expr}")
    py_source = "\n".join(py_lines)

    def oracle():
        namespace = {}
        exec(py_source, {}, namespace)
        return namespace["__result__"]

    return source, oracle


class TestGeneratedPrograms:
    @settings(max_examples=50, deadline=None)
    @given(case=programs(), k=st.sampled_from([4, 8, 20]))
    def test_compiled_matches_python(self, case, k):
        source, oracle = case
        rf = NamedStateRegisterFile(num_registers=80, context_size=20)
        result = run_source(source, rf, k=k)
        assert result.return_value == oracle()

    @settings(max_examples=25, deadline=None)
    @given(case=programs())
    def test_flags_do_not_change_semantics(self, case):
        source, oracle = case
        expected = oracle()
        for optimize_level in (0, 1):
            for emit_rfree in (False, True):
                rf = NamedStateRegisterFile(num_registers=40,
                                            context_size=20)
                result = run_source(source, rf,
                                    optimize_level=optimize_level,
                                    emit_rfree=emit_rfree)
                assert result.return_value == expected

    @settings(max_examples=20, deadline=None)
    @given(case=programs())
    def test_tiny_register_file_still_correct(self, case):
        source, oracle = case
        rf = NamedStateRegisterFile(num_registers=4, context_size=20)
        result = run_source(source, rf, k=6)
        assert result.return_value == oracle()
