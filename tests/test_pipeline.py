"""Tests for the 5-stage pipeline timing model and cycle-time claim."""

import pytest

from repro.asm import assemble
from repro.core import NamedStateRegisterFile
from repro.cpu import CPU, PipelinedCPU
from repro.hw import paper_geometries
from repro.hw.timing import cycle_time_impact
from repro.lang import compile_source


def nsf():
    return NamedStateRegisterFile(num_registers=80, context_size=20)


def run_both(src):
    program = assemble(src)
    plain = CPU(program, nsf()).run()
    piped = PipelinedCPU(assemble(src), nsf())
    piped_result = piped.run()
    return plain, piped_result, piped


class TestHazards:
    def test_functional_equivalence(self):
        src = """
        main:
            li r1, 0
            li r2, 1
            li r3, 20
        loop:
            beq r2, r3, done
            add r1, r1, r2
            addi r2, r2, 1
            j loop
        done:
            out r1
            halt
        """
        plain, piped, _ = run_both(src)
        assert plain.return_value == piped.return_value == sum(range(1, 20))
        assert plain.instructions == piped.instructions

    def test_pipeline_never_faster(self):
        src = """
        main:
            addi sp, sp, -1
            li r1, 3
            sw r1, 0(sp)
            lw r2, 0(sp)
            add r3, r2, r2
            out r3
            halt
        """
        plain, piped, _ = run_both(src)
        assert piped.cycles >= plain.cycles

    def test_load_use_stall_detected(self):
        src = """
        main:
            addi sp, sp, -1
            li r1, 7
            sw r1, 0(sp)
            lw r2, 0(sp)
            add r3, r2, r2    ; uses r2 right after the load
            out r3
            halt
        """
        _, _, cpu = run_both(src)
        assert cpu.load_use_stalls == 1

    def test_independent_instruction_hides_load_use(self):
        src = """
        main:
            addi sp, sp, -1
            li r1, 7
            sw r1, 0(sp)
            lw r2, 0(sp)
            li r4, 5          ; independent filler
            add r3, r2, r2
            out r3
            halt
        """
        _, _, cpu = run_both(src)
        assert cpu.load_use_stalls == 0

    def test_taken_branch_penalty(self):
        src = """
        main:
            li r1, 1
            beq r1, r1, target   ; always taken
            nop
        target:
            out r1
            halt
        """
        _, _, cpu = run_both(src)
        assert cpu.control_stalls >= 1

    def test_untaken_branch_free(self):
        src = """
        main:
            li r1, 1
            beq r1, zr, nowhere  ; never taken
            out r1
            halt
        nowhere:
            halt
        """
        _, _, cpu = run_both(src)
        assert cpu.control_stalls == 0

    def test_compiled_program_on_pipeline(self):
        compiled = compile_source("""
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(10); }
        """)
        cpu = PipelinedCPU(compiled.program, nsf())
        result = cpu.run()
        assert result.return_value == 55
        assert cpu.control_stalls > 0


class TestCycleTimeClaim:
    def test_nsf_does_not_stretch_cycle_time(self):
        # §6.1: the 5-6% slower access "should have no effect on the
        # processor's cycle time" because the cache path is longer.
        for nsf_geom, seg_geom in zip(paper_geometries("nsf"),
                                      paper_geometries("segmented")):
            assert cycle_time_impact(nsf_geom, seg_geom) == 0.0

    def test_impact_appears_when_regfile_is_critical(self):
        nsf_geom = paper_geometries("nsf")[0]
        seg_geom = paper_geometries("segmented")[0]
        impact = cycle_time_impact(nsf_geom, seg_geom,
                                   pipeline_critical_ns=5.0)
        assert impact > 0.0
