"""Randomized dataflow DAGs through the thread scheduler.

Generates random dependency DAGs (each thread sums constants plus the
results of earlier threads, with random remote stalls), runs them under
both scheduling modes and on a cluster, and checks every node against a
direct topological evaluation.  This is the runtime's equivalent of the
register-file oracle tests: arbitrary synchronization structure, exact
expected values.
"""

from hypothesis import given, settings, strategies as st

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.runtime import Cluster, ThreadMachine


@st.composite
def dags(draw):
    """A random DAG: node i depends on a subset of nodes < i."""
    size = draw(st.integers(2, 10))
    nodes = []
    for i in range(size):
        deps = []
        if i:
            count = draw(st.integers(0, min(3, i)))
            deps = sorted(draw(st.sets(
                st.integers(0, i - 1), min_size=count, max_size=count,
            )))
        base = draw(st.integers(-20, 20))
        stall = draw(st.integers(0, 2))
        nodes.append((deps, base, stall))
    return nodes


def evaluate(nodes):
    values = []
    for deps, base, _ in nodes:
        values.append(base + sum(values[d] for d in deps))
    return values


def build_threads(machine, nodes, spawner=None):
    spawner = spawner or machine.spawn
    futures = [machine.future(name=f"n{i}") for i in range(len(nodes))]

    def node_body(act, index):
        deps, base, stall = nodes[index]
        total, = act.args(base)
        for _ in range(stall):
            yield machine.remote(20)
        for d in deps:
            value = yield machine.wait(futures[d])
            incoming = act.alloc()
            act.let(incoming, value)
            act.add(total, total, incoming)
        machine.put_reg(act, futures[index], total)
        return act.test(total)

    threads = [spawner(node_body, i) for i in range(len(nodes))]
    return threads, futures


class TestSchedulerDAGs:
    @settings(max_examples=40, deadline=None)
    @given(nodes=dags(), eager=st.booleans())
    def test_dag_evaluates_correctly(self, nodes, eager):
        rf = NamedStateRegisterFile(num_registers=128, context_size=32)
        machine = ThreadMachine(rf, eager_switch=eager)
        threads, futures = build_threads(machine, nodes)
        machine.run()
        expected = evaluate(nodes)
        assert [f.value for f in futures] == expected
        assert [t.result.value for t in threads] == expected

    @settings(max_examples=25, deadline=None)
    @given(nodes=dags())
    def test_dag_on_tiny_segmented_file(self, nodes):
        # Constant frame thrash must not corrupt the dataflow values.
        rf = SegmentedRegisterFile(num_registers=32, context_size=32)
        machine = ThreadMachine(rf)
        _, futures = build_threads(machine, nodes)
        machine.run()
        assert [f.value for f in futures] == evaluate(nodes)

    @settings(max_examples=20, deadline=None)
    @given(nodes=dags(), num_nodes=st.integers(1, 4),
           stealing=st.booleans())
    def test_dag_on_cluster(self, nodes, num_nodes, stealing):
        cluster = Cluster(
            num_nodes,
            lambda i: NamedStateRegisterFile(num_registers=128,
                                             context_size=32),
            network_latency=30,
            work_stealing=stealing,
        )
        node0 = cluster.node(0)
        futures = [node0.future(name=f"n{i}") for i in range(len(nodes))]

        def node_body(act, index):
            deps, base, stall = nodes[index]
            total, = act.args(base)
            for _ in range(stall):
                yield act.machine.remote(20)
            for d in deps:
                value = yield act.machine.wait(futures[d])
                incoming = act.alloc()
                act.let(incoming, value)
                act.add(total, total, incoming)
            act.machine.put_reg(act, futures[index], total)
            return act.test(total)

        for i in range(len(nodes)):
            cluster.spawn_on(i % num_nodes, node_body, i)
        cluster.run()
        assert [f.value for f in futures] == evaluate(nodes)

    @settings(max_examples=20, deadline=None)
    @given(nodes=dags())
    def test_reverse_spawn_order_still_resolves(self, nodes):
        # Spawning consumers before producers forces maximal blocking.
        rf = NamedStateRegisterFile(num_registers=128, context_size=32)
        machine = ThreadMachine(rf)
        futures = [machine.future(name=f"n{i}") for i in range(len(nodes))]

        def node_body(act, index):
            deps, base, stall = nodes[index]
            total, = act.args(base)
            for d in deps:
                value = yield machine.wait(futures[d])
                incoming = act.alloc()
                act.let(incoming, value)
                act.add(total, total, incoming)
            machine.put_reg(act, futures[index], total)

        for i in reversed(range(len(nodes))):
            machine.spawn(node_body, i)
        machine.run()
        assert [f.value for f in futures] == evaluate(nodes)
