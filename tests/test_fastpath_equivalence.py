"""Differential proof that the hit fast path is bit-identical.

The allocation-free fast path must be *semantically invisible*: every
counter, every victim choice, every snapshot byte must come out exactly
as the legacy tracked path produces them.  Three layers of evidence:

* whole workloads run through fast and tracked twins, compared on raw
  stats and on ``integrity_hash(capture())`` — the snapshot hash pins
  CAM contents, free-list order, policy recency order and RNG state;
* a golden-table experiment rendered under both modes;
* hypothesis-driven random interleavings of read/write/free/switch/
  begin/end against fast and tracked twins, including strict-mode
  faults and eviction pressure.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HIT_READ,
    HIT_SWITCH,
    HIT_WRITE,
    AccessResult,
    ConventionalRegisterFile,
    NamedStateRegisterFile,
    SegmentedRegisterFile,
    integrity_hash,
)
from repro.core.policies import NMRUPolicy
from repro.errors import ReadBeforeWriteError, RegisterFileError
from repro.workloads import ALL_WORKLOADS, get_workload

SCALE = 0.05


def _twin_state(model):
    return model.stats.snapshot(), integrity_hash(model.capture())


def _assert_twins_match(fast, legacy, label=""):
    fast_stats, fast_hash = _twin_state(fast)
    legacy_stats, legacy_hash = _twin_state(legacy)
    assert fast_stats == legacy_stats, f"stats diverged {label}"
    assert fast_hash == legacy_hash, f"snapshots diverged {label}"


# -- whole-workload differential -------------------------------------------

NSF_CONFIGS = [
    ("line1", dict(num_registers=128, line_size=1)),
    ("line4", dict(num_registers=128, line_size=4)),
    ("tiny-dribble", dict(num_registers=40, line_size=1,
                          spill_watermark=2)),
]


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
@pytest.mark.parametrize("config_name,config",
                         NSF_CONFIGS, ids=[c[0] for c in NSF_CONFIGS])
def test_nsf_workload_equivalence(workload_cls, config_name, config):
    twins = []
    for fast_path in (True, False):
        workload = get_workload(workload_cls.name)
        model = NamedStateRegisterFile(
            context_size=workload.context_size, fast_path=fast_path,
            **config)
        workload.run(model, scale=SCALE, seed=1)
        twins.append(model)
    _assert_twins_match(*twins, label=f"{workload_cls.name}/{config_name}")


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_segmented_workload_equivalence(workload_cls):
    twins = []
    for fast_path in (True, False):
        workload = get_workload(workload_cls.name)
        model = SegmentedRegisterFile(
            num_registers=4 * workload.context_size,
            context_size=workload.context_size, fast_path=fast_path)
        workload.run(model, scale=SCALE, seed=1)
        twins.append(model)
    _assert_twins_match(*twins, label=workload_cls.name)


def test_golden_table_equivalence():
    """A whole experiment table renders identically under both modes."""
    from repro.core import base
    from repro.evalx import table1

    rendered = {}
    saved = base.FAST_PATH_DEFAULT
    try:
        for fast in (True, False):
            base.FAST_PATH_DEFAULT = fast
            rendered[fast] = table1.run(scale=0.1, seed=1).rows
    finally:
        base.FAST_PATH_DEFAULT = saved
    assert rendered[True] == rendered[False]


# -- flyweight contract -----------------------------------------------------

def test_hit_flyweights_match_fresh_results():
    for flyweight, kind in ((HIT_READ, "read"), (HIT_WRITE, "write"),
                            (HIT_SWITCH, "switch")):
        fresh = AccessResult(kind=kind)
        for field in ("kind", "hit", "reloaded", "spilled",
                      "lines_reloaded", "lines_spilled", "switch_miss",
                      "moved_out", "moved_in"):
            assert getattr(flyweight, field) == getattr(fresh, field)
        assert flyweight.stalled is False


def test_flyweights_are_sealed():
    with pytest.raises(AttributeError):
        HIT_READ.hit = False
    with pytest.raises(AttributeError):
        HIT_WRITE.reloaded = 3
    clone = HIT_READ.clone()
    clone.reloaded = 2  # clones are ordinary mutable results
    assert clone.reloaded == 2 and HIT_READ.reloaded == 0


def test_write_allocate_miss_result():
    model = NamedStateRegisterFile(num_registers=8, context_size=8,
                                   line_size=1, fast_path=True)
    cid = model.begin_context()
    result = model.write(0, 42, cid=cid)
    assert result.hit is False
    assert result.stalled is True
    assert result.spilled == 0 and result.reloaded == 0
    with pytest.raises(AttributeError):
        result.spilled = 1
    assert model.stats.write_misses == 1


def test_fast_path_honors_tracked_overrides():
    """Subclasses that replace _do_read/_do_write keep working."""

    class Lossy(NamedStateRegisterFile):
        def _do_read(self, cid, offset, result):
            super()._do_read(cid, offset, result)
            return 999

    model = Lossy(num_registers=8, context_size=8)
    cid = model.begin_context()
    model.write(0, 1, cid=cid)
    value, _ = model.read(0, cid=cid)
    assert value == 999


# -- random interleavings ---------------------------------------------------

N_CONTEXTS = 4
CONTEXT_SIZE = 6

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "free", "switch", "begin",
                         "end"]),
        st.integers(min_value=0, max_value=N_CONTEXTS - 1),
        st.integers(min_value=0, max_value=CONTEXT_SIZE - 1),
        st.integers(min_value=-99, max_value=99),
    ),
    max_size=120,
)

MODEL_FACTORIES = [
    ("nsf-line1", lambda fp: NamedStateRegisterFile(
        num_registers=8, context_size=CONTEXT_SIZE, line_size=1,
        fast_path=fp)),
    ("nsf-line2", lambda fp: NamedStateRegisterFile(
        num_registers=8, context_size=CONTEXT_SIZE, line_size=2,
        fast_path=fp)),
    ("nsf-nmru", lambda fp: NamedStateRegisterFile(
        num_registers=8, context_size=CONTEXT_SIZE, line_size=2,
        policy="nmru", fast_path=fp)),
    ("segmented", lambda fp: SegmentedRegisterFile(
        num_registers=2 * CONTEXT_SIZE, context_size=CONTEXT_SIZE,
        fast_path=fp)),
    ("conventional", lambda fp: ConventionalRegisterFile(
        num_registers=CONTEXT_SIZE, fast_path=fp)),
]


def _apply(model, live, op, ctx, offset, value):
    """Run one op; returns (payload, error-type) for comparison."""
    try:
        if op == "begin":
            if ctx not in live:
                model.begin_context(cid=ctx)
                live.add(ctx)
            return None, None
        if ctx not in live:
            return None, None
        if op == "end":
            model.end_context(ctx)
            live.discard(ctx)
            return None, None
        if op == "switch":
            result = model.switch_to(ctx)
            return result.switch_miss, None
        if op == "write":
            result = model.write(offset, value, cid=ctx)
            return result.hit, None
        if op == "read":
            read_value, result = model.read(offset, cid=ctx)
            return (read_value, result.hit), None
        if op == "free":
            model.free_register(offset, cid=ctx)
            return None, None
    except RegisterFileError as error:
        return None, type(error)
    raise AssertionError(f"unknown op {op}")


@pytest.mark.parametrize("factory_name,factory", MODEL_FACTORIES,
                         ids=[f[0] for f in MODEL_FACTORIES])
@settings(max_examples=40, deadline=None)
@given(ops=op_strategy)
def test_random_interleavings_equivalent(factory_name, factory, ops):
    fast, legacy = factory(True), factory(False)
    fast_live, legacy_live = set(), set()
    for step, (op, ctx, offset, value) in enumerate(ops):
        fast_out = _apply(fast, fast_live, op, ctx, offset, value)
        legacy_out = _apply(legacy, legacy_live, op, ctx, offset, value)
        assert fast_out == legacy_out, f"step {step}: {op} diverged"
    _assert_twins_match(fast, legacy, label=factory_name)


# -- NMRU bounded sampling --------------------------------------------------

def test_nmru_victim_excludes_mru_with_one_draw():
    policy = NMRUPolicy(seed=3)
    for key in range(5):
        policy.insert(key)
    policy.touch(2)
    state_before = policy._rng.getstate()
    for _ in range(50):
        assert policy.victim() != 2
    # exactly one RNG draw per victim() call: replaying 50 single draws
    # from the saved state reproduces the same sequence
    import random

    replay = random.Random()
    replay.setstate(state_before)
    policy._rng.setstate(state_before)
    victims = [policy.victim() for _ in range(10)]
    expected = []
    members = {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
    for _ in range(10):
        index = replay.randrange(4)
        if index >= members[2]:
            index += 1
        expected.append(index)
    assert victims == expected
