"""Packed trace representation and binary serialization.

The flat ``array``-backed event store must be indistinguishable from
the old tuple list through every public surface (iteration, counts,
text format), and the struct-packed binary format must round-trip any
trace — including values outside int64 — while rejecting malformed
input with :class:`TraceFormatError` rather than garbage results.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import Trace, TracingRegisterFile, replay
from repro.trace.events import (
    INT64_MAX,
    INT64_MIN,
    OP_READ,
    OP_WRITE,
    TraceFormatError,
    WIDE_VALUE,
)
from repro.core import NamedStateRegisterFile


def _sample_trace(context_size=4):
    trace = Trace(context_size=context_size)
    trace.append("B", 1)
    trace.append("S", 1)
    trace.append("W", 1, 0, 42)
    trace.append("T", 0, 0, 1)
    trace.append("R", 1, 0)
    trace.append("F", 1, 0)
    trace.append("E", 1)
    return trace


# -- packed storage behaves like the tuple list ----------------------------


def test_iteration_yields_str_op_tuples():
    trace = _sample_trace()
    events = list(trace)
    assert events[0] == ("B", 1, 0, 0)
    assert events[2] == ("W", 1, 0, 42)
    assert all(isinstance(op, str) for op, _, _, _ in events)


def test_events_property_matches_iteration():
    trace = _sample_trace()
    assert trace.events == list(trace)


def test_append_accepts_int_and_str_opcodes():
    a = Trace(context_size=2)
    b = Trace(context_size=2)
    a.append("R", 1, 3)
    b.append(OP_READ, 1, 3)
    assert a == b


def test_legacy_tuple_list_constructor():
    events = [("B", 7, 0, 0), ("W", 7, 2, -5), ("E", 7, 0, 0)]
    trace = Trace(events=events, context_size=4)
    assert list(trace) == events


def test_wide_values_survive_packing():
    trace = Trace(context_size=2)
    big = 1 << 80
    trace.append("W", 1, 0, big)
    trace.append("W", 1, 1, -(1 << 70))
    assert list(trace) == [("W", 1, 0, big), ("W", 1, 1, -(1 << 70))]


def test_int64_boundaries_stay_inline():
    trace = Trace(context_size=2)
    trace.append("W", 1, 0, INT64_MAX)
    trace.append("W", 1, 1, INT64_MIN)
    data, wide = trace.packed()
    # INT64_MIN is the wide sentinel but, stored literally with an
    # empty side table, still reads back as itself
    assert not wide or 1 not in wide
    assert list(trace)[0][3] == INT64_MAX
    assert list(trace)[1][3] == INT64_MIN


# -- binary <-> text round trips --------------------------------------------


def test_binary_round_trip():
    trace = _sample_trace()
    assert Trace.loads_binary(trace.dumps_binary()) == trace


def test_text_round_trip():
    trace = _sample_trace()
    assert Trace.loads(trace.dumps()) == trace


def test_binary_and_text_agree():
    trace = _sample_trace()
    via_binary = Trace.loads_binary(trace.dumps_binary())
    via_text = Trace.loads(trace.dumps())
    assert via_binary == via_text


def test_load_autodetects_format(tmp_path):
    trace = _sample_trace()
    binary = tmp_path / "t.bin"
    text = tmp_path / "t.txt"
    trace.dump(binary, binary=True)
    trace.dump(text)
    assert Trace.load(binary) == trace
    assert Trace.load(text) == trace


_random_events = st.lists(
    st.tuples(
        st.sampled_from(["B", "E", "S", "R", "W", "F", "T"]),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=31),
        st.one_of(
            st.integers(min_value=-(1 << 70), max_value=1 << 70),
            st.just(WIDE_VALUE),
            st.just(INT64_MAX),
        ),
    ),
    max_size=120,
)


@given(events=_random_events)
@settings(max_examples=80, deadline=None)
def test_binary_round_trip_random(events):
    trace = Trace(context_size=32)
    for op, cid, offset, value in events:
        trace.append(op, cid, offset, value)
    recovered = Trace.loads_binary(trace.dumps_binary())
    assert recovered == trace
    assert list(recovered) == list(trace)


@given(events=_random_events)
@settings(max_examples=40, deadline=None)
def test_text_round_trip_random(events):
    trace = Trace(context_size=32)
    for op, cid, offset, value in events:
        trace.append(op, cid, offset, value)
    assert Trace.loads(trace.dumps()) == trace


# -- malformed input ---------------------------------------------------------


def _corrupt(payload, **replacements):
    return payload


@pytest.mark.parametrize("mangle", [
    lambda raw: raw[:10],                          # truncated header
    lambda raw: b"XXXX" + raw[4:],                 # wrong magic
    lambda raw: raw[:4] + b"\xff" + raw[5:],       # unknown version
    lambda raw: raw[:-8],                          # truncated payload
    lambda raw: raw + b"trailing",                 # trailing bytes
    lambda raw: b"",                               # empty
])
def test_malformed_binary_raises(mangle):
    raw = _sample_trace().dumps_binary()
    with pytest.raises(TraceFormatError):
        Trace.loads_binary(mangle(raw))


def test_malformed_binary_bad_opcode():
    trace = _sample_trace()
    data, _ = trace.packed()
    data[0] = 99
    with pytest.raises(TraceFormatError):
        Trace.loads_binary(trace.dumps_binary())


def test_malformed_text_raises():
    with pytest.raises(TraceFormatError):
        Trace.loads("ctx 4\nQ 1 2 3\n")


# -- replay over the packed store -------------------------------------------


def _recorded(workload_ops):
    tracer = TracingRegisterFile(
        NamedStateRegisterFile(num_registers=16, context_size=4)
    )
    workload_ops(tracer)
    return tracer.trace


def _exercise(rf):
    a = rf.begin_context()
    rf.switch_to(a)
    for i in range(4):
        rf.write(i, i * 10)
    rf.tick(3)
    b = rf.begin_context()
    rf.switch_to(b)
    rf.write(0, 7)
    assert rf.read(0)[0] == 7
    rf.free_register(0)
    rf.end_context(b)
    rf.switch_to(a)
    assert rf.read(2)[0] == 20
    rf.end_context(a)


def test_replay_verified_matches_recorded_values():
    trace = _recorded(_exercise)
    model = NamedStateRegisterFile(num_registers=16, context_size=4)
    replay(trace, model, verify=True)
    assert model.stats.reads == trace.counts()["R"]


def test_replay_fast_and_verified_same_stats():
    trace = _recorded(_exercise)
    fast = NamedStateRegisterFile(num_registers=16, context_size=4)
    checked = NamedStateRegisterFile(num_registers=16, context_size=4)
    replay(trace, fast, verify=False)
    replay(trace, checked, verify=True)
    assert fast.stats.snapshot() == checked.stats.snapshot()


def test_replay_accepts_legacy_event_iterable():
    trace = _recorded(_exercise)

    class LegacyTrace(list):
        context_size = 4

    legacy = LegacyTrace(trace.events)
    model = NamedStateRegisterFile(num_registers=16, context_size=4)
    replay(legacy, model, verify=True)
    assert model.stats.reads == trace.counts()["R"]


def test_replay_wide_values():
    trace = Trace(context_size=4)
    big = 1 << 90
    trace.append("B", 1)
    trace.append("S", 1)
    trace.append("W", 1, 0, big)
    trace.append("R", 1, 0)
    model = NamedStateRegisterFile(num_registers=16, context_size=4)
    replay(trace, model, verify=True)
    assert model.read(0, cid=1)[0] == big
