"""Tests for compiler-inserted register deallocation (rfree)."""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.lang import compile_source, lower_program, parse, run_source
from repro.lang.regalloc import allocate
from repro.lang.rfree import dead_colors_after

SRC = """
func helper(a, b) {
  var t = a * b;
  var u = t + a;
  return u - b;
}
func main() {
  var x = helper(3, 4);
  var y = helper(5, 6);
  return x * 100 + y;
}
"""
EXPECTED = (3 * 4 + 3 - 4) * 100 + (5 * 6 + 5 - 6)


class TestAnalysis:
    def _alloc(self, source, fn="helper", k=8):
        ir = lower_program(parse(source)).functions[fn]
        return ir, allocate(ir, k=k)

    def test_finds_dying_registers(self):
        ir, allocation = self._alloc(SRC)
        freeable = dead_colors_after(ir, allocation.assignment)
        assert freeable  # something dies inside helper
        for colors in freeable.values():
            assert colors == sorted(set(colors))

    def test_never_frees_live_colors(self):
        from repro.lang.liveness import analyze

        ir, allocation = self._alloc(SRC, fn="main", k=8)
        freeable = dead_colors_after(ir, allocation.assignment)
        live_out, _ = analyze(ir)
        for index, colors in freeable.items():
            live_colors = {
                allocation.assignment[v]
                for v in live_out[index]
                if v in allocation.assignment
            }
            # A freed color must not be occupied by any live virtual...
            # unless that virtual was *re-defined* by this instruction
            # (then it was excluded).
            for color in colors:
                assert color not in live_colors


class TestEndToEnd:
    @pytest.mark.parametrize("model_cls", [NamedStateRegisterFile,
                                           SegmentedRegisterFile])
    def test_same_answer_with_and_without(self, model_cls):
        results = set()
        for emit in (False, True):
            rf = model_cls(num_registers=80, context_size=20)
            results.add(run_source(SRC, rf, emit_rfree=emit).return_value)
        assert results == {EXPECTED}

    def test_rfree_instructions_emitted(self):
        plain = compile_source(SRC)
        freed = compile_source(SRC, emit_rfree=True)
        assert "rfree" not in plain.assembly
        assert freed.assembly.count("rfree") >= 3

    def test_rfree_shrinks_footprint(self):
        source = """
        func work(n) {
          var total = 0;
          var i = 1;
          while (i <= n) {
            var a = i * 3;
            var b = a + i;
            var c = b * b;
            total = total + c;
            i = i + 1;
          }
          return total;
        }
        func main() { return work(25); }
        """
        footprints = {}
        for emit in (False, True):
            rf = NamedStateRegisterFile(num_registers=80, context_size=20)
            result = run_source(source, rf, emit_rfree=emit)
            footprints[emit] = rf.stats.max_active_registers
            assert result.return_value == sum(
                ((i * 3 + i) ** 2) for i in range(1, 26)
            )
        assert footprints[True] <= footprints[False]

    def test_rfree_under_pressure_still_correct(self):
        # Spilled allocations + rfree interact; results must hold.
        decls = "\n".join(f"var x{i} = {i + 1};" for i in range(12))
        total = " + ".join(f"x{i}" for i in range(12))
        source = f"func main() {{ {decls} return {total}; }}"
        rf = NamedStateRegisterFile(num_registers=16, context_size=20)
        result = run_source(source, rf, k=4, emit_rfree=True)
        assert result.return_value == sum(range(1, 13))

    def test_recursion_with_rfree(self):
        source = """
        func fib(n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(13); }
        """
        rf = NamedStateRegisterFile(num_registers=40, context_size=20)
        assert run_source(source, rf, emit_rfree=True).return_value == 233
