"""The stack-distance oracle equals event-exact replay, everywhere.

Three rings of evidence:

* **Golden workloads.** For every recorded workload trace the paper's
  sweeps replay, :func:`capacity_curves` must reproduce the hit /
  spill / reload counters of an event-exact replay at every capacity
  on a grid straddling the trace's peak demand — including the
  sub-peak region where real evictions happen.
* **Sweep parity.** :func:`oracle_sweep` returns byte-identical stats
  snapshots to :func:`repro.trace.replay.sweep` across capacities and
  policies, including configurations (NMRU, FIFO) it can only serve by
  falling back to event replay.
* **Random traces.** Hypothesis generates arbitrary BEGIN / END /
  read / write interleavings and the curves must match replay at every
  tiny capacity, plus hold the Mattson monotonicity invariant.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NamedStateRegisterFile
from repro.evalx.common import make_nsf
from repro.trace import columnar, oracle
from repro.trace.events import (
    OP_BEGIN,
    OP_END,
    OP_FREE,
    OP_READ,
    OP_WRITE,
    Trace,
)
from repro.trace.recorder import TracingRegisterFile
from repro.trace.replay import replay, sweep

#: capacity-dependent stat fields the oracle predicts exactly
CURVE_FIELDS = (
    "reads", "writes", "read_hits", "read_misses", "write_hits",
    "write_misses", "registers_spilled", "lines_spilled",
    "live_registers_spilled", "registers_reloaded", "lines_reloaded",
    "live_registers_reloaded", "active_registers_reloaded",
    "raw_bytes_spilled", "wire_bytes_spilled", "raw_bytes_reloaded",
    "wire_bytes_reloaded",
)

#: (workload name, recording scale) — the golden sweeps' workloads
GOLDEN_WORKLOADS = [
    ("CompiledSuite", 0.4),
    ("GateSim", 0.15),
    ("Gamteb", 0.1),
]


def _record(name, scale):
    from repro import workloads

    workload = getattr(workloads, name)()
    recorder = TracingRegisterFile(make_nsf(workload))
    workload.run(recorder, scale=scale, seed=1)
    return workload, recorder.trace


@pytest.fixture(scope="module", params=GOLDEN_WORKLOADS,
                ids=[name for name, _ in GOLDEN_WORKLOADS])
def recorded(request):
    return _record(*request.param)


def _capacity_grid(trace):
    """Capacities straddling the trace's peak register demand."""
    analysis = columnar.analyze(trace)
    peak = analysis.peak_lines if analysis else 40
    grid = {max(1, peak // 4), max(1, peak // 2), peak - 1, peak,
            peak + 1, peak + 25}
    return sorted(c for c in grid if c >= 1)


def _event_model(trace, capacity, **kw):
    model = NamedStateRegisterFile(
        num_registers=capacity, context_size=trace.context_size,
        line_size=1, **kw)
    replay(trace, model, verify=False)
    return model


def test_curves_match_event_replay_on_golden_workloads(recorded):
    _, trace = recorded
    grid = _capacity_grid(trace)
    curves = oracle.capacity_curves(trace, grid)
    for capacity in grid:
        model = _event_model(trace, capacity)
        stats = model.stats
        for field in CURVE_FIELDS:
            assert curves[capacity][field] == getattr(stats, field), (
                f"capacity {capacity}: {field}")
        assert curves[capacity]["words_stored"] == \
            model.backing.words_stored
        assert curves[capacity]["words_loaded"] == \
            model.backing.words_loaded


def test_curves_match_event_replay_across_line_sizes_and_policies(
        recorded):
    """The design-space scan: line sizes x policies on every golden.

    Capacities are in *lines*; the grid straddles the trace's peak so
    sub-peak evictions, partial-line write allocates and line-granular
    valid masks are all exercised.
    """
    _, trace = recorded
    ctx = trace.context_size
    base = _capacity_grid(trace)
    for line_size in (1, 2, 4):
        grid = sorted({max(1, c // line_size) for c in base} | {1, 3})
        for policy in ("lru", "fifo"):
            curves = oracle.capacity_curves(
                trace, grid, line_size=line_size, policy=policy)
            for cap in grid:
                model = NamedStateRegisterFile(
                    num_registers=cap * line_size, context_size=ctx,
                    line_size=line_size, policy=policy)
                replay(trace, model, verify=False)
                for field in CURVE_FIELDS:
                    assert curves[cap][field] == \
                        getattr(model.stats, field), (
                            f"L={line_size} {policy} cap={cap}: "
                            f"{field}")
                assert curves[cap]["words_stored"] == \
                    model.backing.words_stored
                assert curves[cap]["words_loaded"] == \
                    model.backing.words_loaded


def test_tables_match_event_snapshots_on_golden_workloads(recorded):
    """Full-snapshot parity: every stats field, not just the curve."""
    _, trace = recorded
    ctx = trace.context_size
    grid = sorted({max(1, c // 2) for c in _capacity_grid(trace)})
    for policy in ("lru", "fifo"):
        tables = oracle.capacity_tables(trace, grid, line_size=2,
                                        policy=policy)
        for cap in grid:
            model = NamedStateRegisterFile(
                num_registers=cap * 2, context_size=ctx,
                line_size=2, policy=policy)
            replay(trace, model, verify=False)
            synth = NamedStateRegisterFile(
                num_registers=cap * 2, context_size=ctx,
                line_size=2, policy=policy)
            oracle.apply_table(tables[cap], synth)
            assert synth.stats.snapshot() == model.stats.snapshot(), (
                f"{policy} cap={cap}")
            assert synth.backing.words_stored == \
                model.backing.words_stored
            assert synth.backing.words_loaded == \
                model.backing.words_loaded


def test_segmented_tables_match_event_replay(recorded):
    """The segmented-frame oracle across spill modes and policies."""
    from repro.core import SegmentedRegisterFile

    _, trace = recorded
    ctx = trace.context_size
    frames = [1, 2, 4, 8]
    for spill_mode in ("frame", "live"):
        for policy in ("lru", "fifo"):
            tables = oracle.segmented_tables(
                trace, frames, spill_mode=spill_mode, policy=policy)
            for nf in frames:
                model = SegmentedRegisterFile(
                    num_registers=nf * ctx, context_size=ctx,
                    spill_mode=spill_mode, policy=policy)
                replay(trace, model, verify=False)
                synth = SegmentedRegisterFile(
                    num_registers=nf * ctx, context_size=ctx,
                    spill_mode=spill_mode, policy=policy)
                oracle.apply_table(tables[nf], synth)
                assert synth.stats.snapshot() == \
                    model.stats.snapshot(), (
                        f"{spill_mode} {policy} frames={nf}")
                assert synth.backing.words_stored == \
                    model.backing.words_stored
                assert synth.backing.words_loaded == \
                    model.backing.words_loaded


def test_vector_kernel_matches_scalar_walk(recorded):
    """The NumPy windowed-stack kernel is byte-identical to the
    pure-stdlib Fenwick walk (the no-NumPy fallback)."""
    from repro.trace import vector

    if not columnar.numpy_available():
        pytest.skip("NumPy unavailable: only the scalar walk runs")
    _, trace = recorded
    grid = _capacity_grid(trace)
    for line_size in (1, 2, 4):
        fast = vector.lru_scan(trace, grid, 4, line_size)
        assert fast is not None
        shared, percap = oracle._scan_lru(trace, grid, 4, line_size,
                                          tables=False)
        slow = {cap: {k: v for k, v in entry.items()
                      if k != "switch_misses"}
                for cap, entry in percap.items()}
        assert fast[0]["reads"] == shared["reads"]
        assert fast[0]["writes"] == shared["writes"]
        assert fast[1] == slow


def test_curves_cost_one_pass_regardless_of_grid(recorded):
    _, trace = recorded
    few = oracle.capacity_curves(trace, [8, 40])
    many = oracle.capacity_curves(trace, range(1, 121))
    for capacity, point in few.items():
        assert many[capacity] == point


def test_oracle_sweep_matches_event_sweep(recorded):
    workload, trace = recorded
    analysis = columnar.analyze(trace)
    peak = analysis.peak_lines if analysis else 40
    ctx = trace.context_size

    def factory(num_registers, policy):
        return NamedStateRegisterFile(
            num_registers=num_registers, context_size=ctx,
            line_size=1, policy=policy, policy_seed=3)

    configurations = [
        {"num_registers": n, "policy": policy}
        for n in (max(2, peak // 2), peak, peak + 40)
        for policy in ("lru", "fifo", "nmru")
    ]
    expected = sweep(trace, factory, configurations, verify=False)
    got = oracle.oracle_sweep(trace, factory, configurations)
    assert [config for config, _ in got] == \
        [config for config, _ in expected]
    for (_, got_stats), (_, want_stats) in zip(got, expected):
        assert got_stats.snapshot() == want_stats.snapshot()


def test_unsupported_traces_raise():
    trace = Trace(context_size=4)
    trace.append(OP_BEGIN, 1)
    trace.append(OP_WRITE, 1, 0, 7)
    trace.append(OP_READ, 1, 1, 0)  # cold read: demand-reload regime
    with pytest.raises(oracle.OracleUnsupported):
        oracle.capacity_curves(trace, [4])

    wide = Trace(context_size=4)
    wide.append(OP_BEGIN, 1)
    wide.append_wide(OP_WRITE, 1, 0, 1 << 80)
    with pytest.raises(oracle.OracleUnsupported):
        oracle.capacity_curves(wide, [4])

    with pytest.raises(oracle.OracleUnsupported):
        oracle.capacity_curves(Trace(context_size=4), [])

    freed = Trace(context_size=4)
    freed.append(OP_BEGIN, 1)
    freed.append(OP_WRITE, 1, 0, 7)
    freed.append(OP_FREE, 1, 0)  # line-granular FREE diverges per file
    with pytest.raises(oracle.OracleUnsupported):
        oracle.capacity_curves(freed, [4], line_size=2)
    # ... but at line_size 1 a FREE is an exact deletion
    assert oracle.capacity_curves(freed, [4])[4]["write_misses"] == 1


# -- hypothesis: random traces -------------------------------------------

CTX = 4


@st.composite
def random_traces(draw):
    """A valid BEGIN/END/read/write/FREE interleaving over a tiny
    space — END and ``rfree`` churn drives the deletions-as-holes
    paths of the stack scan."""
    trace = Trace(context_size=CTX)
    live = {}
    opened = []
    next_cid = 0
    for _ in range(draw(st.integers(2, 40))):
        kinds = ["begin"]
        if opened:
            kinds += ["write"] * 4 + ["end", "free"]
            if any(live[cid] for cid in opened):
                kinds += ["read"] * 4
        kind = draw(st.sampled_from(kinds))
        if kind == "begin":
            cid = next_cid
            next_cid += 1
            trace.append(OP_BEGIN, cid)
            live[cid] = set()
            opened.append(cid)
        elif kind == "write":
            cid = draw(st.sampled_from(opened))
            offset = draw(st.integers(0, CTX - 1))
            trace.append(OP_WRITE, cid, offset,
                         draw(st.integers(0, 99)))
            live[cid].add(offset)
        elif kind == "read":
            cid = draw(st.sampled_from(
                [c for c in opened if live[c]]))
            offset = draw(st.sampled_from(sorted(live[cid])))
            trace.append(OP_READ, cid, offset, 0)
        elif kind == "free":
            # freeing a never-written offset is a legal no-op
            cid = draw(st.sampled_from(opened))
            offset = draw(st.integers(0, CTX - 1))
            trace.append(OP_FREE, cid, offset)
            live[cid].discard(offset)
        else:
            cid = draw(st.sampled_from(opened))
            trace.append(OP_END, cid)
            opened.remove(cid)
            del live[cid]
    return trace


@settings(max_examples=80, deadline=None)
@given(random_traces())
def test_curves_match_replay_on_random_traces(trace):
    capacities = list(range(1, 10))
    curves = oracle.capacity_curves(trace, capacities)
    for capacity in capacities:
        stats = _event_model(trace, capacity).stats
        for field in CURVE_FIELDS:
            assert curves[capacity][field] == getattr(stats, field), (
                f"capacity {capacity}: {field}")


@settings(max_examples=80, deadline=None)
@given(random_traces())
def test_curves_are_monotone_in_capacity(trace):
    capacities = list(range(1, 12))
    curves = oracle.capacity_curves(trace, capacities)
    for small, big in zip(capacities, capacities[1:]):
        for field in ("read_misses", "write_misses",
                      "registers_spilled", "registers_reloaded"):
            assert curves[small][field] >= curves[big][field]


@settings(max_examples=40, deadline=None)
@given(random_traces())
def test_oracle_sweep_matches_replay_on_random_traces(trace):
    def factory(num_registers):
        return NamedStateRegisterFile(
            num_registers=num_registers, context_size=CTX, line_size=1)

    configurations = [{"num_registers": n} for n in (2, 5, 64)]
    expected = sweep(trace, factory, configurations, verify=False)
    got = oracle.oracle_sweep(trace, factory, configurations)
    for (_, got_stats), (_, want_stats) in zip(got, expected):
        assert got_stats.snapshot() == want_stats.snapshot()
