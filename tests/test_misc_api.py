"""Coverage for small public-API surfaces not exercised elsewhere."""

import pytest

from repro import __version__, NamedStateRegisterFile
from repro.evalx.charts import chart_for
from repro.evalx.tables import ExperimentTable
from repro.workloads import get_workload


class TestPackageSurface:
    def test_version(self):
        assert __version__.count(".") == 2

    def test_top_level_reexports(self):
        import repro

        for name in ("NamedStateRegisterFile", "SegmentedRegisterFile",
                     "ConventionalRegisterFile", "CostModel",
                     "BackingStore", "Ctable", "speedup"):
            assert hasattr(repro, name)


class TestWorkloadResultSummary:
    def test_summary_fields(self):
        workload = get_workload("Quicksort")
        model = NamedStateRegisterFile(num_registers=128,
                                       context_size=32)
        result = workload.run(model, scale=0.25, seed=2)
        summary = result.summary()
        assert summary["name"] == "Quicksort"
        assert summary["model"] == "nsf"
        assert summary["verified"] is True
        assert summary["instructions"] > 0
        assert 0 <= summary["utilization_avg"] <= 1


class TestChartMappings:
    def _fig9(self):
        t = ExperimentTable("Figure 9", "t",
                            headers=["Benchmark", "Type", "NSF max %",
                                     "NSF avg %", "Segment avg %",
                                     "NSF/Segment"])
        t.add_row("GateSim", "Sequential", 80.0, 60.0, 20.0, 3.0)
        return t

    def test_fig9_bars(self):
        chart = chart_for(self._fig9())
        assert chart and "GateSim" in chart and "#" in chart

    def test_fig11_lines(self):
        t = ExperimentTable("Figure 11", "t",
                            headers=["Frames", "Seq NSF", "Seq Segment",
                                     "Par NSF", "Par Segment"])
        t.add_row(2, 5.0, 1.8, 8.0, 1.9)
        t.add_row(4, 9.0, 3.3, 15.0, 3.7)
        chart = chart_for(t)
        assert chart and "contexts" in chart

    def test_fig13_parallel_lines(self):
        t = ExperimentTable("Figure 13", "t",
                            headers=["Type", "Regs/line", "Reload %",
                                     "Live reload %",
                                     "Active reload %"])
        t.add_row("Sequential", 1, 0.0, 0.0, 0.0)
        t.add_row("Parallel", 1, 34.0, 34.0, 34.0)
        t.add_row("Parallel", 4, 64.0, 48.0, 36.0)
        chart = chart_for(t)
        assert chart and "line size" in chart


class TestExperimentTableCSV:
    def test_quoting(self):
        t = ExperimentTable("T", "t", headers=["a,b", "plain"])
        t.add_row('x "y"', 1)
        csv = t.to_csv()
        assert '"a,b",plain' in csv
        assert '"x ""y""",1' in csv

    def test_roundtrippable_shape(self):
        t = ExperimentTable("T", "t", headers=["k", "v"])
        t.add_row("a", 1.5)
        t.add_row("b", 2)
        lines = t.to_csv().strip().splitlines()
        assert len(lines) == 3


class TestActivationMisc:
    def test_alloc_many_by_count(self):
        from repro.activation import SequentialMachine

        machine = SequentialMachine(
            NamedStateRegisterFile(num_registers=16, context_size=8)
        )

        def body(act):
            regs = act.alloc_many(3)
            assert len(regs) == 3
            for i, r in enumerate(regs):
                act.let(r, i)
            return act.test(regs[2])

        assert machine.run(body) == 2

    def test_peek_memory_resident_local(self):
        from repro.activation import SequentialMachine

        machine = SequentialMachine(
            NamedStateRegisterFile(num_registers=16, context_size=2)
        )

        def body(act):
            regs = act.alloc_many(4)      # two overflow to memory
            for i, r in enumerate(regs):
                act.let(r, i * 5)
            assert regs[3].in_memory
            return act.peek(regs[3])

        assert machine.run(body) == 15

    def test_register_arg_from_memory_local(self):
        from repro.activation import SequentialMachine

        machine = SequentialMachine(
            NamedStateRegisterFile(num_registers=16, context_size=2)
        )

        def callee(act, v):
            r, = act.args(v)
            act.muli(r, r, 2)
            return act.test(r)

        def body(act):
            regs = act.alloc_many(3)
            act.let(regs[2], 21)          # memory-resident
            return machine.call(callee, regs[2])

        assert machine.run(body) == 42


class TestMultithreadMisc:
    def test_mtresult_return_values_with_empty_output(self):
        from repro.cpu.multithread import MTResult

        result = MTResult(outputs=[[1, 2], []], instructions=5,
                          cycles=7, thread_switches=0)
        assert result.return_values == [2, None]
