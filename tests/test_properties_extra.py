"""More hypothesis properties: trace replay, the optimizer, workloads."""

from hypothesis import given, settings, strategies as st

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.lang import run_source
from repro.trace import Trace, TracingRegisterFile, replay

# -- replay equivalence ----------------------------------------------------

trace_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "switch", "end", "tick"]),
        st.integers(0, 3),     # context slot
        st.integers(0, 7),     # offset
        st.integers(-99, 99),  # value
    ),
    max_size=120,
)


def _drive(model, sequence):
    live = {}
    written = set()
    for kind, slot, offset, value in sequence:
        cid = live.get(slot)
        if kind == "end":
            if cid is not None:
                model.end_context(cid)
                written.difference_update(
                    k for k in set(written) if k[0] == cid
                )
                del live[slot]
            continue
        if kind == "tick":
            model.tick(1 + (value % 3))
            continue
        if cid is None:
            cid = model.begin_context()
            live[slot] = cid
        if kind == "switch":
            model.switch_to(cid)
        elif kind == "write":
            model.write(offset, value, cid=cid)
            written.add((cid, offset))
        elif kind == "read" and (cid, offset) in written:
            model.read(offset, cid=cid)


class TestReplayProperties:
    @settings(max_examples=50, deadline=None)
    @given(sequence=trace_ops)
    def test_recorded_trace_replays_to_identical_stats(self, sequence):
        inner = NamedStateRegisterFile(num_registers=8, context_size=8)
        tracer = TracingRegisterFile(inner)
        _drive(tracer, sequence)

        fresh = NamedStateRegisterFile(num_registers=8, context_size=8)
        replay(tracer.trace, fresh)
        a, b = inner.stats.snapshot(), fresh.stats.snapshot()
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(sequence=trace_ops)
    def test_serialization_roundtrip_preserves_replay(self, sequence):
        inner = NamedStateRegisterFile(num_registers=8, context_size=8)
        tracer = TracingRegisterFile(inner)
        _drive(tracer, sequence)
        reloaded = Trace.loads(tracer.trace.dumps())
        fresh = NamedStateRegisterFile(num_registers=8, context_size=8)
        replay(reloaded, fresh)
        assert fresh.stats.reads == inner.stats.reads
        assert fresh.stats.writes == inner.stats.writes

    @settings(max_examples=30, deadline=None)
    @given(sequence=trace_ops)
    def test_replay_on_segmented_is_clean(self, sequence):
        inner = NamedStateRegisterFile(num_registers=16, context_size=8)
        tracer = TracingRegisterFile(inner)
        _drive(tracer, sequence)
        seg = SegmentedRegisterFile(num_registers=16, context_size=8)
        replay(tracer.trace, seg)  # verification inside replay
        assert seg.stats.writes == inner.stats.writes


# -- optimizer correctness over generated programs ----------------------------


@st.composite
def expressions(draw, depth=0):
    """A random arithmetic expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(0, 50)))
        return draw(st.sampled_from(["a", "b", "c"]))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


class TestOptimizerProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        expr=expressions(),
        a=st.integers(-20, 20),
        b=st.integers(-20, 20),
        c=st.integers(-20, 20),
    )
    def test_optimized_equals_unoptimized(self, expr, a, b, c):
        source = f"""
        func main() {{
            var a = {a};
            var b = {b};
            var c = {c};
            var dead = a * b + c;
            return {expr};
        }}
        """
        results = set()
        for level in (0, 1):
            rf = NamedStateRegisterFile(num_registers=80,
                                        context_size=20)
            results.add(
                run_source(source, rf, optimize_level=level).return_value
            )
        assert len(results) == 1
        assert results == {eval(expr, {}, {"a": a, "b": b, "c": c})}


# -- workload determinism under model permutation ---------------------------------


class TestWorkloadModelIndependence:
    @settings(max_examples=8, deadline=None)
    @given(
        registers=st.sampled_from([4, 8, 16, 40, 80]),
        line_size=st.sampled_from([1, 2, 4]),
    )
    def test_gatesim_output_independent_of_configuration(self, registers,
                                                         line_size):
        from repro.workloads import get_workload

        if registers % line_size:
            return
        workload = get_workload("GateSim")
        rf = NamedStateRegisterFile(num_registers=registers,
                                    context_size=20,
                                    line_size=line_size)
        result = workload.run(rf, scale=0.25, seed=5)
        assert result.verified
