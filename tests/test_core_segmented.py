"""Unit tests for the segmented and conventional register-file models."""

import pytest

from repro.core import ConventionalRegisterFile, SegmentedRegisterFile
from repro.errors import CapacityError, ReadBeforeWriteError


def make(registers=8, context=4, **kw):
    return SegmentedRegisterFile(num_registers=registers,
                                 context_size=context, **kw)


class TestConstruction:
    def test_frames(self):
        seg = make(registers=128, context=32)
        assert seg.num_frames == 4
        assert seg.frame_size == 32

    def test_too_small_for_one_frame(self):
        with pytest.raises(CapacityError):
            make(registers=8, context=16)

    def test_bad_spill_mode(self):
        with pytest.raises(ValueError):
            make(spill_mode="lazy")


class TestResidentSwitching:
    def test_switch_between_resident_contexts_is_free(self):
        seg = make()
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        seg.switch_to(b)
        seg.write(0, 2)
        res = seg.switch_to(a)
        assert not res.switch_miss
        assert res.reloaded == 0
        assert seg.stats.switch_misses == 2  # only first-time installs

    def test_fresh_context_install_moves_nothing(self):
        seg = make()
        a = seg.begin_context()
        res = seg.switch_to(a)
        assert res.switch_miss  # frame had to be allocated
        assert res.reloaded == 0  # but nothing came from memory
        assert seg.stats.registers_reloaded == 0


class TestEviction:
    def test_third_context_evicts_lru_frame(self):
        seg = make(registers=8, context=4)  # 2 frames
        a = seg.begin_context()
        b = seg.begin_context()
        c = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 10)
        seg.write(1, 11)
        seg.switch_to(b)
        seg.write(0, 20)
        seg.switch_to(c)  # evicts a (LRU)
        assert seg.resident_context_ids() == {b, c}
        assert seg.stats.registers_spilled == 4  # whole frame in frame mode
        assert seg.stats.live_registers_spilled == 2

    def test_underflow_reloads_whole_frame(self):
        seg = make(registers=8, context=4)
        a, b, c = (seg.begin_context() for _ in range(3))
        seg.switch_to(a)
        seg.write(0, 10)
        seg.switch_to(b)
        seg.write(0, 20)
        seg.switch_to(c)
        seg.write(0, 30)
        res = seg.switch_to(a)  # underflow: reload a's frame
        assert res.switch_miss
        assert res.reloaded == 4
        assert seg.stats.live_registers_reloaded == 1
        assert seg.read(0)[0] == 10

    def test_live_mode_counts_only_valid(self):
        seg = make(registers=8, context=4, spill_mode="live")
        a, b, c = (seg.begin_context() for _ in range(3))
        seg.switch_to(a)
        seg.write(0, 10)
        seg.write(1, 11)
        seg.switch_to(b)
        seg.write(0, 20)
        seg.switch_to(c)  # evicts a: 2 live registers
        assert seg.stats.registers_spilled == 2
        seg.switch_to(a)  # evicts b; reloads a's 2
        assert seg.stats.registers_reloaded == 2
        assert seg.read(1)[0] == 11

    def test_values_survive_eviction_cycles(self):
        seg = make(registers=8, context=4)
        cids = [seg.begin_context() for _ in range(5)]
        for k, cid in enumerate(cids):
            seg.switch_to(cid)
            for i in range(4):
                seg.write(i, k * 10 + i)
        for k, cid in enumerate(cids):
            seg.switch_to(cid)
            for i in range(4):
                assert seg.read(i)[0] == k * 10 + i

    def test_active_reload_tracking(self):
        seg = make(registers=8, context=4)
        a, b, c = (seg.begin_context() for _ in range(3))
        seg.switch_to(a)
        seg.write(0, 1)
        seg.write(1, 2)
        seg.switch_to(b)
        seg.write(0, 3)
        seg.switch_to(c)
        seg.write(0, 4)
        seg.switch_to(a)  # reloads r0, r1
        seg.read(0)       # only r0 is touched again
        assert seg.stats.active_registers_reloaded == 1


class TestAccessSemantics:
    def test_read_before_write_strict(self):
        seg = make()
        a = seg.begin_context()
        seg.switch_to(a)
        with pytest.raises(ReadBeforeWriteError):
            seg.read(2)

    def test_read_before_write_lenient(self):
        seg = make(strict=False)
        a = seg.begin_context()
        seg.switch_to(a)
        assert seg.read(2)[0] == 0

    def test_implicit_fault_in_on_foreign_access(self):
        # Accessing a non-resident context faults its frame in, which is
        # what a machine-level context switch would do.
        seg = make(registers=4, context=4)  # one frame
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        res = seg.write(0, 2, cid=b)  # forces a's frame out
        assert res.switch_miss
        assert seg.resident_context_ids() == {b}

    def test_free_register_drops_value(self):
        seg = make()
        a = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 5)
        seg.free_register(0)
        assert seg.active_register_count() == 0
        with pytest.raises(ReadBeforeWriteError):
            seg.read(0)


class TestOccupancy:
    def test_occupancy_counts_valid_only(self):
        seg = make(registers=8, context=4)
        a = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        seg.write(1, 1)
        assert seg.active_register_count() == 2  # not the whole frame
        seg.tick(4)
        assert seg.stats.occupancy_weighted == 8
        assert seg.stats.utilization_avg == pytest.approx(2 / 8)

    def test_resident_bounded_by_frames(self):
        seg = make(registers=8, context=4)
        cids = [seg.begin_context() for _ in range(6)]
        for cid in cids:
            seg.switch_to(cid)
            seg.write(0, 1)
        assert seg.resident_context_count() == 2
        assert seg.stats.max_resident_contexts <= 2

    def test_end_context_releases_frame(self):
        seg = make(registers=8, context=4)
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        seg.switch_to(b)
        seg.end_context(a)
        assert seg.resident_context_count() == 1
        c = seg.begin_context()
        res = seg.switch_to(c)
        assert res.spilled == 0  # reused the freed frame


class TestConventional:
    def test_single_frame(self):
        conv = ConventionalRegisterFile(num_registers=8)
        assert conv.num_frames == 1
        assert conv.context_size == 8

    def test_every_switch_swaps_whole_file(self):
        conv = ConventionalRegisterFile(num_registers=4)
        a = conv.begin_context()
        b = conv.begin_context()
        conv.switch_to(a)
        for i in range(4):
            conv.write(i, i)
        conv.switch_to(b)
        conv.write(0, 9)
        assert conv.stats.registers_spilled == 4
        conv.switch_to(a)
        assert conv.stats.registers_reloaded == 4
        assert conv.read(3)[0] == 3

    def test_context_size_parameter(self):
        conv = ConventionalRegisterFile(num_registers=128, context_size=20)
        assert conv.num_frames == 1
        assert conv.num_registers == 20
