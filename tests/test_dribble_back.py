"""Tests for the dribble-back (background spill) NSF extension."""

import pytest

from repro.core import NSF_COSTS, CostModel, NamedStateRegisterFile
from repro.workloads import get_workload


def make(watermark, registers=8, context=8):
    return NamedStateRegisterFile(num_registers=registers,
                                  context_size=context,
                                  spill_watermark=watermark)


class TestConfiguration:
    def test_zero_watermark_is_default(self):
        nsf = make(0)
        assert nsf.spill_watermark == 0

    def test_watermark_bounds(self):
        with pytest.raises(ValueError):
            make(-1)
        with pytest.raises(ValueError):
            make(8)  # == num_lines


class TestBehaviour:
    def test_headroom_is_maintained(self):
        nsf = make(2)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        for i in range(8):
            nsf.write(i, i)
        # With a watermark of 2 lines, at most 6 registers stay resident.
        assert nsf.allocated_lines() <= 6
        assert nsf.stats.background_registers_spilled > 0

    def test_values_survive_background_spills(self):
        nsf = make(3, registers=8, context=16)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        for i in range(16):
            nsf.write(i, i * 7)
        for i in range(16):
            assert nsf.read(i)[0] == i * 7

    def test_foreground_spills_replaced_by_background(self):
        workload = get_workload("Gamteb")
        plain = NamedStateRegisterFile(num_registers=128, context_size=32)
        dribble = NamedStateRegisterFile(num_registers=128,
                                         context_size=32,
                                         spill_watermark=8)
        workload.run(plain, scale=0.3, seed=3)
        workload.run(dribble, scale=0.3, seed=3)
        # Same program, same verified result; the dribble file moved
        # most spill traffic off the critical path.
        assert dribble.stats.registers_spilled < plain.stats.registers_spilled
        assert dribble.stats.background_registers_spilled > 0

    def test_total_spill_volume_not_smaller(self):
        # Dribbling is speculative: it can only move MORE total data.
        workload = get_workload("Gamteb")
        plain = NamedStateRegisterFile(num_registers=128, context_size=32)
        dribble = NamedStateRegisterFile(num_registers=128,
                                         context_size=32,
                                         spill_watermark=8)
        workload.run(plain, scale=0.3, seed=3)
        workload.run(dribble, scale=0.3, seed=3)
        total_plain = plain.stats.registers_spilled
        total_dribble = (dribble.stats.registers_spilled
                         + dribble.stats.background_registers_spilled)
        assert total_dribble >= total_plain


class TestCosting:
    def test_background_spills_free_by_default(self):
        nsf = make(2)
        cid = nsf.begin_context()
        nsf.switch_to(cid)
        for i in range(8):
            nsf.write(i, i)
        stats = nsf.stats
        free_model = NSF_COSTS
        charged_model = CostModel(name="charged",
                                  background_spill_cycles=1.0)
        assert (charged_model.traffic_cycles(stats)
                > free_model.traffic_cycles(stats))
