"""Cross-validation: record-once/replay-everywhere equals direct runs.

The activation machine's event stream depends only on the program and
its input — never on which register file is underneath (values are
verified identical).  Therefore replaying a trace recorded over one
model onto any other configuration must produce *exactly* the same
statistics as running the workload directly on that configuration.

This pins down three things at once: workload determinism, recording
fidelity, and replay fidelity.
"""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.trace import TracingRegisterFile, replay
from repro.workloads import get_workload

SCALE = 0.3
SEED = 9


def record(workload_name, registers, context):
    workload = get_workload(workload_name)
    tracer = TracingRegisterFile(
        NamedStateRegisterFile(num_registers=registers,
                               context_size=context)
    )
    result = workload.run(tracer, scale=SCALE, seed=SEED)
    assert result.verified
    return tracer.trace


def direct(workload_name, model):
    workload = get_workload(workload_name)
    workload.run(model, scale=SCALE, seed=SEED)
    return model.stats.snapshot()


CONFIGS = [
    ("nsf-small", lambda ctx: NamedStateRegisterFile(
        num_registers=2 * ctx, context_size=ctx)),
    ("nsf-line4", lambda ctx: NamedStateRegisterFile(
        num_registers=4 * ctx, context_size=ctx, line_size=4)),
    ("segmented", lambda ctx: SegmentedRegisterFile(
        num_registers=4 * ctx, context_size=ctx)),
    ("segmented-live", lambda ctx: SegmentedRegisterFile(
        num_registers=2 * ctx, context_size=ctx, spill_mode="live")),
]


@pytest.mark.parametrize("workload_name,context", [
    ("GateSim", 20),
    ("Quicksort", 32),
    ("Paraffins", 32),
])
@pytest.mark.parametrize("config_name,make",
                         CONFIGS, ids=[c[0] for c in CONFIGS])
def test_replay_equals_direct(workload_name, context, config_name, make):
    trace = record(workload_name, registers=4 * context, context=context)
    replayed = make(context)
    replay(trace, replayed)
    direct_stats = direct(workload_name, make(context))
    assert replayed.stats.snapshot() == direct_stats


def test_trace_is_model_independent():
    # Recording over NSF and over segmented yields the same stream.
    workload_name = "GateSim"
    nsf_tracer = TracingRegisterFile(
        NamedStateRegisterFile(num_registers=80, context_size=20)
    )
    seg_tracer = TracingRegisterFile(
        SegmentedRegisterFile(num_registers=80, context_size=20)
    )
    get_workload(workload_name).run(nsf_tracer, scale=SCALE, seed=SEED)
    get_workload(workload_name).run(seg_tracer, scale=SCALE, seed=SEED)
    assert nsf_tracer.trace.events == seg_tracer.trace.events
