"""The fault-tolerant sweep farm: leases, queue, workers, supervisor.

Covers the TTL lease state machine (acquire / contend / renew / theft /
release / stale-break), the exactly-once commit guarantee of the
durable work queue under arbitrary claim/renew/expire/steal
interleavings (hypothesis), the whole-group watchdog and seeded retry
jitter satellites, and — the headline — a farm sweep producing output
byte-identical to the sequential runner, including under poison-cell
quarantine and chaos-armed lease paths.
"""

import io
import json
import os
import pathlib
import sys
import tempfile
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import plane as plane_mod
from repro.errors import JournalError
from repro.evalx import runner as runner_mod
from repro.farm import lease as lease_mod
from repro.farm import run_farm_sweep
from repro.farm import worker as worker_mod
from repro.farm.queue import WorkQueue

SCALE = 0.2
SEED = 7


# -- leases ------------------------------------------------------------------


class TestLease:
    def test_acquire_creates_and_contends(self, tmp_path):
        path = tmp_path / "cell.lease"
        lease = lease_mod.acquire(path, "w1", 0, ttl=30.0)
        assert lease is not None
        info = lease_mod.read_lease(path)
        assert info["worker"] == "w1" and info["pid"] == os.getpid()
        assert not lease_mod.is_stale(info)
        # a live, in-deadline lease is not stealable
        assert lease_mod.acquire(path, "w2", 0, ttl=30.0) is None

    def test_steal_dead_pid(self, tmp_path):
        path = tmp_path / "cell.lease"
        path.write_text(json.dumps({
            "worker": "ghost", "pid": 2 ** 22 + 12345, "attempt": 0,
            "ttl": 30.0, "acquired": 1.0, "deadline": 10 ** 12,
        }))
        assert lease_mod.is_stale(lease_mod.read_lease(path))
        lease = lease_mod.acquire(path, "thief", 1, ttl=30.0)
        assert lease is not None
        assert lease_mod.read_lease(path)["worker"] == "thief"

    def test_steal_expired_deadline(self, tmp_path, monkeypatch):
        path = tmp_path / "cell.lease"
        assert lease_mod.acquire(path, "w1", 0, ttl=5.0) is not None
        # the holder's pid is alive (it is us) — expiry alone must
        # open the steal path
        monkeypatch.setattr(lease_mod, "_now",
                            lambda base=lease_mod._now(): base + 600.0)
        lease = lease_mod.acquire(path, "w2", 0, ttl=5.0)
        assert lease is not None
        assert lease_mod.read_lease(path)["worker"] == "w2"

    def test_renew_extends_and_detects_theft(self, tmp_path):
        path = tmp_path / "cell.lease"
        lease = lease_mod.acquire(path, "w1", 0, ttl=5.0)
        before = lease_mod.read_lease(path)["deadline"]
        assert lease.renew()
        assert lease_mod.read_lease(path)["deadline"] >= before
        # a thief rewrites the lease: renew must notice, not clobber
        path.write_text(json.dumps({
            "worker": "w2", "pid": os.getpid(), "attempt": 1,
            "ttl": 5.0, "acquired": 1.0, "deadline": 10 ** 12,
        }))
        assert not lease.renew()
        assert lease_mod.read_lease(path)["worker"] == "w2"

    def test_release_only_own(self, tmp_path):
        path = tmp_path / "cell.lease"
        lease = lease_mod.acquire(path, "w1", 0, ttl=5.0)
        path.write_text(json.dumps({
            "worker": "w2", "pid": os.getpid(), "attempt": 0,
            "ttl": 5.0, "acquired": 1.0, "deadline": 10 ** 12,
        }))
        lease.release()
        assert path.exists()  # a thief's lease is never unlinked
        mine = lease_mod.acquire(tmp_path / "other.lease", "w1", 0, 5.0)
        mine.release()
        assert not (tmp_path / "other.lease").exists()

    def test_torn_lease_is_stale_and_stealable(self, tmp_path):
        path = tmp_path / "cell.lease"
        path.write_bytes(b'{"worker": "w1", "pid')
        assert lease_mod.is_stale(lease_mod.read_lease(path))
        assert lease_mod.acquire(path, "w2", 0, ttl=5.0) is not None

    def test_chaos_stale_lease_is_broken_on_acquire(self, tmp_path):
        plane = plane_mod.FaultPlane(3, kinds=("stale_lease",),
                                     sites=("lease.acquire",),
                                     count=4, horizon=4)
        path = tmp_path / "cell.lease"
        with plane_mod.activated(plane):
            lease = lease_mod.acquire(path, "w1", 0, ttl=5.0)
        assert lease is not None
        assert lease_mod.read_lease(path)["worker"] == "w1"
        assert any(f["kind"] == "stale_lease" for f in plane.injected)

    def test_chaos_heartbeat_stall_silences_renewals(self, tmp_path,
                                                     monkeypatch):
        plane = plane_mod.FaultPlane(3, kinds=("heartbeat_stall",),
                                     sites=("lease.renew",),
                                     count=4, horizon=4)
        path = tmp_path / "cell.lease"
        lease = lease_mod.acquire(path, "w1", 0, ttl=5.0)
        deadline = lease_mod.read_lease(path)["deadline"]
        with plane_mod.activated(plane):
            assert lease.renew()  # consumed a stall token: no-op
        assert lease_mod.read_lease(path)["deadline"] == deadline
        # the stall outlives the TTL, so the lease expires under us
        monkeypatch.setattr(lease_mod, "_now",
                            lambda base=lease_mod._now(): base + 6.0)
        assert lease_mod.is_stale(lease_mod.read_lease(path))


# -- the durable queue -------------------------------------------------------


class TestWorkQueue:
    def test_open_refuses_overwrite_and_mismatch(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue.jsonl")
        queue.open("table1", 0.5, 7)
        with pytest.raises(JournalError, match="already exists"):
            queue.open("table1", 0.5, 7)
        with pytest.raises(JournalError, match="operating points"):
            queue.open("table1", 0.9, 7, resume=True)

    def test_enqueue_is_idempotent_across_resumes(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue.jsonl")
        state = queue.open("table1", 0.5, 7)
        queue.enqueue_missing(["a", "b"], state)
        state = queue.open("table1", 0.5, 7, resume=True)
        queue.enqueue_missing(["a", "b", "c"], state)
        assert state.order == ["a", "b", "c"]
        reloaded = queue.load_state()
        assert reloaded.order == ["a", "b", "c"]
        assert reloaded.pending() == ["a", "b", "c"]

    def test_commit_is_exactly_once(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue.jsonl")
        state = queue.open("table1", 0.5, 7)
        queue.enqueue_missing(["a"], state)
        queue.commit_cell("a", "ok", payload={"rows": []}, state=state)
        with pytest.raises(JournalError, match="already committed"):
            queue.commit_cell("a", "ok", payload={"rows": []},
                              state=state)
        assert queue.load_state().pending() == []

    def test_claims_feed_attempt_counts(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue.jsonl")
        state = queue.open("table1", 0.5, 7)
        queue.enqueue_missing(["a"], state)
        queue.record_claim("a", "w1", 123, 0, state)
        queue.record_claim("a", "w2", 456, 1, state)
        reloaded = queue.load_state()
        assert reloaded.attempts["a"] == 2
        assert [c["worker"] for c in reloaded.claims["a"]] == ["w1",
                                                              "w2"]

    def test_quarantine_records_survive_reload(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue.jsonl")
        state = queue.open("table1", 0.5, 7)
        queue.enqueue_missing(["a", "b"], state)
        queue.commit_cell("a", "quarantined", attempts=2,
                          error="poisoned: boom", state=state)
        reloaded = queue.load_state()
        assert reloaded.quarantined_keys() == ["a"]
        assert reloaded.cells["a"]["error"] == "poisoned: boom"
        assert reloaded.pending() == ["b"]


# -- exactly-once under arbitrary interleavings (hypothesis) -----------------


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), st.sampled_from(["w1", "w2"])),
        st.tuples(st.just("renew"), st.sampled_from(["w1", "w2"])),
        st.tuples(st.just("release"), st.sampled_from(["w1", "w2"])),
        st.tuples(st.just("complete"), st.sampled_from(["w1", "w2"])),
        st.tuples(st.just("expire"), st.just("")),
    ),
    min_size=1, max_size=24,
)


class TestExactlyOnce:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_OPS)
    def test_any_interleaving_commits_exactly_once(self, ops):
        """Claim/renew/expire/steal in any order: the queue ends with
        at most one commit record for the cell, and exactly one
        whenever any holder completed it."""
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="farm-prop-"))
        real_now = lease_mod._now
        clock = [1000.0]
        lease_mod._now = lambda: clock[0]
        try:
            queue = WorkQueue(workdir / "queue.jsonl")
            state = queue.open("table1", 0.5, 7)
            queue.enqueue_missing(["cell"], state)
            path = workdir / "cell.lease"
            spool = workdir / "cell.json"
            held = {}
            completions = 0
            for op, who in ops:
                if op == "acquire" and who not in held:
                    lease = lease_mod.acquire(path, who, 0, ttl=10.0)
                    if lease is not None:
                        held[who] = lease
                elif op == "renew" and who in held:
                    held[who].renew()
                elif op == "release" and who in held:
                    held.pop(who).release()
                elif op == "complete" and who in held:
                    # deterministic cell: every completion writes the
                    # identical payload (byte-identical, last wins)
                    spool.write_text(json.dumps(
                        {"key": "cell", "status": "ok",
                         "payload": {"rows": [[1]]}, "attempt": 0},
                        sort_keys=True))
                    completions += 1
                elif op == "expire":
                    clock[0] += 20.0  # past every TTL

                # invariant: the lease file never names two holders —
                # whoever the file names is the one true holder
                info = lease_mod.read_lease(path)
                if info is not None:
                    assert info["worker"] in ("w1", "w2",)

            # the supervisor's commit pass, run twice (a resumed
            # supervisor replays it): still exactly once
            for _ in range(2):
                fresh = queue.load_state()
                if spool.exists() and not fresh.committed("cell"):
                    record = json.loads(spool.read_text())
                    queue.commit_cell("cell", "ok",
                                      payload=record["payload"],
                                      state=fresh)
            records, dropped = queue.journal.records()
            commits = [r for r in records if r.get("record") == "cell"]
            assert dropped == 0
            assert len(commits) == (1 if completions else 0)
        finally:
            lease_mod._now = real_now


# -- satellites: group watchdog, jitter, failure detail ----------------------


class TestWatchedRun:
    def test_group_kill_reaches_sigterm_immune_grandchildren(
            self, tmp_path):
        pidfile = tmp_path / "grandchild.pid"
        grandchild = (
            "import time,os,sys,signal;"
            "signal.signal(signal.SIGTERM, signal.SIG_IGN);"
            f"open({str(pidfile)!r},'w').write(str(os.getpid()));"
            "time.sleep(120)"
        )
        script = (
            "import subprocess,sys,time;"
            f"subprocess.Popen([sys.executable,'-c',{grandchild!r}]);"
            "time.sleep(120)"
        )
        returncode, _, _, timed_out = runner_mod.watched_run(
            [sys.executable, "-c", script], timeout=1.5, grace=0.3)
        assert timed_out
        assert returncode != 0
        pid = int(pidfile.read_text())
        # the grandchild ignored SIGTERM; only a group SIGKILL can
        # have removed it.  It may linger briefly as an unreaped
        # zombie after reparenting, so poll for dead-or-zombie.
        assert self._dead_or_zombie(pid, within=5.0)

    @staticmethod
    def _dead_or_zombie(pid, within):
        deadline = time.monotonic() + within
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            try:
                with open(f"/proc/{pid}/stat", "r") as handle:
                    if handle.read().rsplit(")", 1)[1].split()[0] == "Z":
                        return True
            except (OSError, IndexError):
                return True
            time.sleep(0.05)
        return False

    def test_fast_exit_is_not_timed_out(self):
        returncode, stdout, _, timed_out = runner_mod.watched_run(
            [sys.executable, "-c", "print('hi')"], timeout=30.0)
        assert returncode == 0 and not timed_out
        assert stdout.strip() == "hi"


class TestRetryJitter:
    def test_deterministic_and_bounded(self):
        values = {runner_mod.retry_jitter(7, "a/b", attempt)
                  for attempt in range(8)}
        assert all(0.5 <= v <= 1.0 for v in values)
        assert len(values) > 1  # attempts spread, not constant
        assert runner_mod.retry_jitter(7, "a/b", 3) \
            == runner_mod.retry_jitter(7, "a/b", 3)
        assert runner_mod.retry_jitter(7, "a/b", 3) \
            != runner_mod.retry_jitter(8, "a/b", 3)

    def test_delay_is_jittered_exponential(self):
        d0 = runner_mod.retry_delay(0.1, 0, 7, "k")
        d3 = runner_mod.retry_delay(0.1, 3, 7, "k")
        assert 0.05 <= d0 <= 0.1
        assert 0.4 <= d3 <= 0.8


class TestFailureDetail:
    def test_both_tails_always_captured(self):
        detail = runner_mod.failure_detail("out line", "err line")
        assert "stderr: err line" in detail
        assert "stdout: out line" in detail

    def test_empty_streams_vanish(self):
        assert runner_mod.failure_detail("", "") == ""
        assert runner_mod.failure_detail("only out", "") \
            == "stdout: only out"


# -- the farm end to end -----------------------------------------------------


def _sequential_reference(tmp_path):
    out = tmp_path / "ref.json"
    result = runner_mod.run_sweep(
        "compression", scale=SCALE, seed=SEED,
        journal_path=tmp_path / "ref.jsonl", out_path=out, jobs=1)
    assert result.ok
    return out.read_bytes()


class TestFarmSweep:
    def test_farm_output_is_byte_identical_to_sequential(self,
                                                         tmp_path):
        ref_bytes = _sequential_reference(tmp_path)
        out = tmp_path / "farm.json"
        result = run_farm_sweep(
            "compression", scale=SCALE, seed=SEED,
            state_dir=tmp_path / "farm", out_path=out, workers=2,
            lease_ttl=1.0)
        assert result.ok
        assert result.ran == len(result.keys)
        assert out.read_bytes() == ref_bytes

    def test_farm_engine_propagates_and_output_matches(self, tmp_path,
                                                       monkeypatch):
        """``engine=`` reaches worker cell subprocesses, byte-exactly.

        The selector is exported as ``REPRO_REPLAY_ENGINE`` and flows
        supervisor -> worker -> cell because every child env derives
        from ``_cell_env()``; the farm output under the oracle engine
        must still be byte-identical to the sequential event-engine
        sweep.
        """
        from repro.trace.columnar import ENV_ENGINE

        # touch the var through monkeypatch so teardown restores the
        # pre-test state even though run_farm_sweep mutates os.environ
        monkeypatch.setenv(ENV_ENGINE, "event")
        monkeypatch.delenv(ENV_ENGINE)
        ref_bytes = _sequential_reference(tmp_path)
        out = tmp_path / "farm.json"
        result = run_farm_sweep(
            "compression", scale=SCALE, seed=SEED,
            state_dir=tmp_path / "farm", out_path=out, workers=2,
            lease_ttl=1.0, engine="oracle")
        assert result.ok
        # the selector landed in the env every worker and cell inherits
        assert os.environ[ENV_ENGINE] == "oracle"
        assert runner_mod._cell_env()[ENV_ENGINE] == "oracle"
        assert out.read_bytes() == ref_bytes

    def test_farm_resume_skips_committed_cells(self, tmp_path):
        out = tmp_path / "farm.json"
        first = run_farm_sweep(
            "compression", scale=SCALE, seed=SEED,
            state_dir=tmp_path / "farm", out_path=out, workers=2,
            lease_ttl=1.0)
        assert first.ok
        first_bytes = out.read_bytes()
        again = run_farm_sweep(
            "compression", scale=SCALE, seed=SEED,
            state_dir=tmp_path / "farm", out_path=out, workers=2,
            lease_ttl=1.0, resume=True)
        assert again.ok
        assert again.ran == 0
        assert again.skipped == len(again.keys)
        assert out.read_bytes() == first_bytes

    def test_farm_refuses_stale_state_without_resume(self, tmp_path):
        run_farm_sweep("compression", scale=SCALE, seed=SEED,
                       state_dir=tmp_path / "farm",
                       out_path=tmp_path / "farm.json", workers=2,
                       lease_ttl=1.0)
        with pytest.raises(JournalError, match="already exists"):
            run_farm_sweep("compression", scale=SCALE, seed=SEED,
                           state_dir=tmp_path / "farm",
                           out_path=tmp_path / "farm.json", workers=2)

    def test_poison_cell_is_quarantined_with_debris(self, tmp_path,
                                                    monkeypatch):
        poison = runner_mod.sweep_cells("compression")[0]
        monkeypatch.setenv(runner_mod.FAIL_CELLS_ENV, f"{poison}:99")
        log = io.StringIO()
        result = run_farm_sweep(
            "compression", scale=SCALE, seed=SEED,
            state_dir=tmp_path / "farm",
            out_path=tmp_path / "farm.json", workers=2,
            lease_ttl=1.0, max_attempts=2, stream=log)
        assert not result.ok
        assert result.quarantined_keys == [poison]
        assert result.dropped_keys == [poison]
        # partial table, explicitly annotated — never a wrong number
        assert "[PARTIAL: 1 of" in result.table.notes
        assert f"[QUARANTINED: {poison}]" in result.table.notes
        # the circuit breaker journaled the attempts and the debris
        queue = WorkQueue(
            worker_mod.queue_path(tmp_path / "farm"))
        record = queue.load_state().cells[poison]
        assert record["status"] == "quarantined"
        assert record["attempts"] == 2
        assert "2 failed attempt(s)" in record["error"]
        assert "stderr:" in record["error"]
        assert "injected failure" in record["error"]
        # the failure spools carry both tails for every attempt
        failures = worker_mod.load_failures(tmp_path / "farm", poison)
        assert len(failures) == 2
        assert all("stderr:" in f["error"] for f in failures)

    def test_worker_kill_chaos_converges_in_process(self, tmp_path):
        """A chaos-armed supervisor (worker_kill at worker.spawn)
        still converges to the sequential bytes: killed workers are
        reaped, respawned and their cells stolen."""
        ref_bytes = _sequential_reference(tmp_path)
        plane = plane_mod.FaultPlane(5, kinds=("worker_kill",),
                                     sites=("worker.spawn",),
                                     count=2, horizon=4)
        out = tmp_path / "farm.json"
        with plane_mod.activated(plane):
            result = run_farm_sweep(
                "compression", scale=SCALE, seed=SEED,
                state_dir=tmp_path / "farm", out_path=out, workers=2,
                lease_ttl=1.0)
        assert result.ok
        assert out.read_bytes() == ref_bytes
        assert any(f["kind"] == "worker_kill" for f in plane.injected)
        assert result.respawns >= 1


# -- slugs and spools --------------------------------------------------------


class TestSpoolNaming:
    def test_slug_is_filesystem_safe_and_collision_resistant(self):
        ugly = "Exp/with spaces:and*stars"
        slug = worker_mod.cell_slug(ugly)
        assert "/" not in slug and " " not in slug and "*" not in slug
        assert worker_mod.cell_slug(ugly) == slug
        assert worker_mod.cell_slug(ugly + "!") != slug

    def test_failure_count_and_load(self, tmp_path):
        state_dir = tmp_path
        worker_mod.spool_dir(state_dir).mkdir()
        for attempt in range(2):
            worker_mod.failure_path(state_dir, "a/b", attempt).write_text(
                json.dumps({"key": "a/b", "attempt": attempt,
                            "error": f"boom {attempt}"}))
        assert worker_mod.failure_count(state_dir, "a/b") == 2
        loaded = worker_mod.load_failures(state_dir, "a/b")
        assert [f["error"] for f in loaded] == ["boom 0", "boom 1"]
        assert worker_mod.load_success(state_dir, "a/b") is None
