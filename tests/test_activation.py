"""Unit tests for the activation-trace machine."""

import pytest

from repro.activation import GuestFault, Memory, SequentialMachine
from repro.core import NamedStateRegisterFile, SegmentedRegisterFile


def nsf_machine(registers=80, context=20):
    rf = NamedStateRegisterFile(num_registers=registers, context_size=context)
    return SequentialMachine(rf)


class TestMemory:
    def test_alloc_is_contiguous_and_disjoint(self):
        mem = Memory()
        a = mem.alloc(10)
        b = mem.alloc(5)
        assert b == a + 10

    def test_default_zero(self):
        mem = Memory()
        assert mem.load(1234) == 0

    def test_store_load_roundtrip(self):
        mem = Memory()
        mem.store(5, 42)
        assert mem.load(5) == 42
        assert mem.loads == 1 and mem.stores == 1

    def test_block_helpers_do_not_count(self):
        mem = Memory()
        mem.write_block(100, [1, 2, 3])
        assert mem.read_block(100, 3) == [1, 2, 3]
        assert mem.loads == 0 and mem.stores == 0

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            Memory().alloc(-1)


class TestBasicOps:
    def test_let_and_arithmetic(self):
        m = nsf_machine()

        def body(act):
            a, b, c = act.alloc_many(3)
            act.let(a, 6)
            act.let(b, 7)
            act.mul(c, a, b)
            return act.test(c)

        assert m.run(body) == 42
        assert m.instructions > 0

    def test_each_op_is_one_instruction(self):
        m = nsf_machine()

        def body(act):
            a, b = act.alloc_many(2)
            before = m.instructions
            act.let(a, 1)      # 1
            act.let(b, 2)      # 2
            act.add(a, a, b)   # 3
            act.test(a)        # 4
            return m.instructions - before

        # +2 for call/return bookkeeping happen outside the body
        assert m.run(body) == 4

    def test_helper_ops(self):
        m = nsf_machine()

        def body(act):
            a, b, c = act.alloc_many(3)
            act.let(a, 12)
            act.let(b, 5)
            results = []
            for name in ("sub", "div", "rem", "band", "bor", "bxor",
                         "shl", "shr", "lt", "le", "eq", "min_", "max_"):
                getattr(act, name)(c, a, b)
                results.append(act.test(c))
            act.addi(c, a, 100)
            results.append(act.test(c))
            act.muli(c, a, 3)
            results.append(act.test(c))
            act.mov(c, a)
            results.append(act.test(c))
            return results

        assert m.run(body) == [
            7, 2, 2, 4, 13, 9, 384, 0, 0, 0, 0, 5, 12, 112, 36, 12,
        ]

    def test_named_registers(self):
        m = nsf_machine()

        def body(act):
            x = act.alloc("x")
            assert "x" in repr(x)
            act.let(x, 1)
            return act.peek(x)

        assert m.run(body) == 1

    def test_immediate_operands_in_op(self):
        m = nsf_machine()

        def body(act):
            a = act.alloc()
            act.let(a, 5)
            act.op(a, lambda x, y: x + y, a, 10)  # int src = immediate
            return act.test(a)

        assert m.run(body) == 15


class TestMemoryOps:
    def test_load_store_via_register_address(self):
        m = nsf_machine()

        def body(act):
            base = m.heap_alloc(4)
            addr, v = act.alloc_many(2)
            act.let(addr, base)
            act.let(v, 77)
            act.store(addr, v, disp=2)
            out = act.alloc()
            act.load(out, addr, disp=2)
            return act.test(out)

        assert m.run(body) == 77

    def test_load_store_via_int_address(self):
        m = nsf_machine()

        def body(act):
            base = m.heap_alloc(1)
            v = act.alloc()
            act.let(v, 5)
            act.store(base, v)
            act.load(v, base)
            return act.test(v)

        assert m.run(body) == 5

    def test_store_immediate_value(self):
        m = nsf_machine()

        def body(act):
            base = m.heap_alloc(1)
            act.store(base, 9)
            v = act.alloc()
            act.load(v, base)
            return act.test(v)

        assert m.run(body) == 9


class TestOverflowLocals:
    def test_locals_beyond_context_live_in_memory(self):
        m = nsf_machine(registers=16, context=4)

        def body(act):
            regs = act.alloc_many(8)  # 4 in registers, 4 in memory
            for i, r in enumerate(regs):
                act.let(r, i * 10)
            assert sum(r.in_memory for r in regs) == 4
            return [act.test(r) for r in regs]

        assert m.run(body) == [0, 10, 20, 30, 40, 50, 60, 70]

    def test_memory_locals_cost_extra_instructions(self):
        m1 = nsf_machine(registers=16, context=4)
        m2 = nsf_machine(registers=16, context=16)

        def body(act):
            regs = act.alloc_many(8)
            for r in regs:
                act.let(r, 1)
            return None

        m1.run(body)
        m2.run(body)
        assert m1.instructions > m2.instructions


class TestCallProtocol:
    def test_nested_calls_get_fresh_contexts(self):
        m = nsf_machine()
        seen = []

        def inner(act, depth):
            seen.append(act.cid)
            if depth:
                m.call(inner, depth - 1)
            return None

        m.run(inner, 3)
        assert len(set(seen)) == 4

    def test_register_arguments_are_read(self):
        m = nsf_machine()

        def callee(act, x):
            rx, = act.args(x)
            act.muli(rx, rx, 2)
            return act.test(rx)

        def caller(act):
            a = act.alloc()
            act.let(a, 21)
            return m.call(callee, a)

        assert m.run(caller) == 42

    def test_call_switch_accounting(self):
        m = nsf_machine()

        def leaf(act):
            return None

        def root(act):
            m.call(leaf)
            m.call(leaf)
            return None

        m.run(root)
        # root in, leaf in/out twice (2 switches each)
        assert m.regfile.stats.context_switches == 5
        assert m.regfile.stats.contexts_created == 3
        assert m.regfile.stats.contexts_ended == 3

    def test_depth_tracking(self):
        m = nsf_machine()

        def rec(act, n):
            if n:
                m.call(rec, n - 1)
            return None

        m.run(rec, 5)
        assert m.max_call_depth == 6
        assert m.call_depth == 0

    def test_recursion_correct_over_small_file(self):
        # A 2-line NSF forces constant spill/reload during recursion; the
        # values must still be right.
        rf = NamedStateRegisterFile(num_registers=2, context_size=20)
        m = SequentialMachine(rf)

        def tri(act, n):
            rn, = act.args(n)
            if act.test(rn) == 0:
                return 0
            rest = m.call(tri, n - 1)
            rr = act.alloc()
            act.let(rr, rest)
            act.add(rr, rr, rn)
            return act.test(rr)

        assert m.run(tri, 10) == 55
        assert rf.stats.registers_reloaded > 0

    def test_recursion_correct_on_segmented(self):
        rf = SegmentedRegisterFile(num_registers=40, context_size=20)
        m = SequentialMachine(rf)

        def tri(act, n):
            rn, = act.args(n)
            if act.test(rn) == 0:
                return 0
            rest = m.call(tri, n - 1)
            rr = act.alloc()
            act.let(rr, rest)
            act.add(rr, rr, rn)
            return act.test(rr)

        assert m.run(tri, 10) == 55
        assert rf.stats.switch_misses > 0


class TestGuestFaults:
    def test_double_free(self):
        m = nsf_machine()

        def body(act):
            r = act.alloc()
            act.let(r, 1)
            act.free(r)
            act.free(r)

        with pytest.raises(GuestFault):
            m.run(body)

    def test_use_after_free(self):
        m = nsf_machine()

        def body(act):
            r = act.alloc()
            act.let(r, 1)
            act.free(r)
            act.test(r)

        with pytest.raises(GuestFault):
            m.run(body)

    def test_write_after_free(self):
        m = nsf_machine()

        def body(act):
            r = act.alloc()
            act.let(r, 1)
            act.free(r)
            act.let(r, 2)

        with pytest.raises(GuestFault):
            m.run(body)

    def test_value_verification_catches_corruption(self):
        rf = NamedStateRegisterFile(num_registers=8, context_size=8)
        m = SequentialMachine(rf)

        def body(act):
            r = act.alloc()
            act.let(r, 10)
            # Corrupt the model behind the shadow's back.
            rf.write(r.offset, 999, cid=act.cid)
            act.test(r)

        with pytest.raises(GuestFault):
            m.run(body)

    def test_free_releases_model_register(self):
        rf = NamedStateRegisterFile(num_registers=8, context_size=8)
        m = SequentialMachine(rf)

        def body(act):
            r = act.alloc()
            act.let(r, 1)
            act.free(r)
            return rf.active_register_count()

        assert m.run(body) == 0
