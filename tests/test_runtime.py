"""Unit tests for the block-multithreaded runtime."""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.errors import DeadlockError, RuntimeModelError
from repro.runtime import Future, IStructure, ThreadMachine


def machine(registers=128, context=32, **kw):
    rf = NamedStateRegisterFile(num_registers=registers, context_size=context)
    return ThreadMachine(rf, **kw)


class TestFuture:
    def test_resolve_once(self):
        f = Future(name="x")
        f._resolve(3)
        assert f.resolved and f.value == 3
        with pytest.raises(RuntimeModelError):
            f._resolve(4)

    def test_repr_states(self):
        f = Future(name="y")
        assert "pending" in repr(f)
        f._resolve(1)
        assert "=1" in repr(f)


class TestIStructure:
    def test_values_after_fill(self):
        ist = IStructure(3, name="v")
        for i, slot in enumerate(ist.slots):
            slot._resolve(i * 2)
        assert ist.values() == [0, 2, 4]
        assert ist.is_full()
        assert len(ist) == 3

    def test_values_with_holes_fault(self):
        ist = IStructure(2)
        ist.slot(0)._resolve(1)
        with pytest.raises(RuntimeModelError):
            ist.values()


class TestScheduling:
    def test_single_thread_runs_to_completion(self):
        m = machine()

        def body(act):
            a = act.alloc()
            act.let(a, 5)
            yield m.remote()
            act.addi(a, a, 1)
            return act.test(a)

        t = m.spawn(body)
        m.run()
        assert t.result.value == 6

    def test_producer_consumer(self):
        m = machine()
        fut = m.future()

        def producer(act):
            a, = act.args(21)
            act.muli(a, a, 2)
            m.put_reg(act, fut, a)
            yield m.remote()

        def consumer(act):
            value = yield m.wait(fut)
            r, = act.args(value)
            return act.test(r)

        c = m.spawn(consumer)
        m.spawn(producer)
        m.run()
        assert c.result.value == 42

    def test_wait_on_resolved_future_does_not_switch(self):
        m = machine()
        fut = m.future()
        fut._resolve(9)

        def body(act):
            value = yield m.wait(fut)
            return value

        t = m.spawn(body)
        switches_before = m.regfile.stats.context_switches
        m.run()
        assert t.result.value == 9
        # Only the switch into the thread itself.
        assert m.regfile.stats.context_switches == switches_before + 1

    def test_thread_join_via_result_future(self):
        m = machine()

        def child(act, n):
            r, = act.args(n)
            act.muli(r, r, 10)
            yield m.remote()
            return act.test(r)

        def parent(act):
            kids = [m.spawn(child, i) for i in range(4)]
            total = 0
            for kid in kids:
                total += yield m.wait(kid.result)
            return total

        p = m.spawn(parent)
        m.run()
        assert p.result.value == 60

    def test_remote_latency_advances_clock(self):
        m = machine(remote_latency=500)

        def body(act):
            yield m.remote()
            return None

        m.spawn(body)
        start = m.cycles
        m.run()
        assert m.cycles - start >= 500
        assert m.idle_cycles > 0

    def test_other_threads_fill_remote_stall(self):
        m = machine(remote_latency=200)
        order = []

        def staller(act):
            order.append("stall-out")
            yield m.remote()
            order.append("stall-back")

        def worker(act):
            a = act.alloc()
            act.let(a, 0)
            for _ in range(3):
                act.addi(a, a, 1)
            order.append("worker")
            yield m.remote(0)

        m.spawn(staller)
        m.spawn(worker)
        m.run()
        assert order.index("worker") < order.index("stall-back")

    def test_deadlock_detection(self):
        m = machine()
        never = m.future()

        def body(act):
            yield m.wait(never)

        m.spawn(body)
        with pytest.raises(DeadlockError):
            m.run()

    def test_non_generator_body_rejected(self):
        m = machine()

        def not_a_thread(act):
            return 5

        m.spawn(not_a_thread)
        with pytest.raises(RuntimeModelError):
            m.run()

    def test_bad_yield_rejected(self):
        m = machine()

        def body(act):
            yield 42

        m.spawn(body)
        with pytest.raises(RuntimeModelError):
            m.run()

    def test_wait_requires_future(self):
        m = machine()
        with pytest.raises(RuntimeModelError):
            m.wait(7)

    def test_contexts_recycled_after_completion(self):
        m = machine()

        def body(act, i):
            r, = act.args(i)
            yield m.remote(0)
            return act.test(r)

        threads = [m.spawn(body, i) for i in range(50)]
        m.run()
        assert [t.result.value for t in threads] == list(range(50))
        assert m.regfile.resident_context_count() == 0
        assert m.regfile.stats.contexts_ended == 50


class TestIStructureDataflow:
    def test_wavefront_style_dependency(self):
        # Each consumer waits on its producer's slot; the chain resolves
        # in dependency order regardless of spawn order.
        m = machine()
        ist = m.istructure(6, name="chain")

        def stage(act, i):
            if i == 0:
                prev = 1
            else:
                prev = yield m.wait(ist.slot(i - 1))
            r, = act.args(prev)
            act.muli(r, r, 2)
            m.put_reg(act, ist.slot(i), r)

        # Spawn in reverse order to force blocking.
        for i in reversed(range(6)):
            m.spawn(stage, i)
        m.run()
        assert ist.values() == [2, 4, 8, 16, 32, 64]


class TestModelInteraction:
    def test_many_threads_on_segmented_file_thrash(self):
        rf_seg = SegmentedRegisterFile(num_registers=128, context_size=32)
        rf_nsf = NamedStateRegisterFile(num_registers=128, context_size=32)
        results = {}
        for rf in (rf_seg, rf_nsf):
            m = ThreadMachine(rf, remote_latency=50)

            def body(act, i):
                regs = act.alloc_many(8)
                for k, r in enumerate(regs):
                    act.let(r, i * 100 + k)
                for _ in range(3):
                    yield m.remote()
                    for r in regs:
                        act.addi(r, r, 1)
                return act.test(regs[0])

            threads = [m.spawn(body, i) for i in range(16)]
            m.run()
            assert [t.result.value for t in threads] == [
                i * 100 + 3 for i in range(16)
            ]
            results[rf.kind] = rf.stats.registers_reloaded
        # 16 interleaved threads over 4 frames thrash the segmented file;
        # the NSF reloads only what is touched.
        assert results["segmented"] > results["nsf"]

    def test_instructions_per_switch_measured(self):
        m = machine()

        def body(act):
            a = act.alloc()
            act.let(a, 0)
            for _ in range(10):
                act.addi(a, a, 1)
            yield m.remote(0)
            return None

        for _ in range(4):
            m.spawn(body)
        m.run()
        stats = m.regfile.stats
        assert stats.instructions_per_switch > 1
