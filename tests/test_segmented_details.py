"""Detailed behavioural tests for segmented-file corner cases."""

import pytest

from repro.core import ConventionalRegisterFile, SegmentedRegisterFile
from repro.errors import ReadBeforeWriteError


def make(registers=8, context=4, **kw):
    return SegmentedRegisterFile(num_registers=registers,
                                 context_size=context, **kw)


class TestWindowUnderflowSemantics:
    def test_reinstall_after_end_is_fresh_again(self):
        # end_context clears the ever-spilled mark: a NEW context that
        # reuses the cid must not pay underflow reloads.
        seg = make()
        a, b, c = (seg.begin_context() for _ in range(3))
        seg.switch_to(a)
        seg.write(0, 1)
        seg.switch_to(b)
        seg.switch_to(c)          # evicts a
        seg.end_context(a)
        reloads_before = seg.stats.registers_reloaded
        fresh = seg.begin_context(cid=a)
        seg.switch_to(fresh)
        assert seg.stats.registers_reloaded == reloads_before

    def test_second_eviction_of_same_context_counts_again(self):
        seg = make(registers=4, context=4)  # one frame
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        seg.switch_to(b)   # evict a (spill 4)
        seg.switch_to(a)   # reload a (4)
        seg.switch_to(b)   # evict a again (4)... b reloads too now
        seg.switch_to(a)
        assert seg.stats.lines_spilled >= 3
        assert seg.read(0)[0] == 1

    def test_partial_frame_eviction_restores_exact_valid_set(self):
        seg = make(registers=4, context=4, spill_mode="live")
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(1, 11)
        seg.write(3, 33)
        seg.switch_to(b)
        seg.switch_to(a)
        assert seg.is_resident(a, 1) and seg.is_resident(a, 3)
        assert not seg.is_resident(a, 0) and not seg.is_resident(a, 2)
        with pytest.raises(ReadBeforeWriteError):
            seg.read(0)
        assert seg.read(3)[0] == 33

    def test_freed_register_not_restored(self):
        seg = make(registers=4, context=4)
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 5)
        seg.write(1, 6)
        seg.free_register(1)
        seg.switch_to(b)      # evict a (only r0 live)
        seg.switch_to(a)
        assert seg.read(0)[0] == 5
        with pytest.raises(ReadBeforeWriteError):
            seg.read(1)


class TestLiveModeAccounting:
    def test_live_counts_equal_frame_counts_when_full(self):
        frame_mode = make(registers=4, context=4)
        live_mode = make(registers=4, context=4, spill_mode="live")
        for seg in (frame_mode, live_mode):
            a = seg.begin_context()
            b = seg.begin_context()
            seg.switch_to(a)
            for i in range(4):
                seg.write(i, i)
            seg.switch_to(b)      # evict a, fully valid
            seg.switch_to(a)      # evict b (empty), restore a
        # Frame mode moves whole frames even when empty (b's eviction);
        # live mode moves only a's four valid registers.
        assert frame_mode.stats.registers_spilled == 8
        assert live_mode.stats.registers_spilled == 4
        assert (frame_mode.stats.registers_reloaded
                == live_mode.stats.registers_reloaded == 4)

    def test_live_counts_smaller_when_sparse(self):
        frame_mode = make(registers=4, context=4)
        live_mode = make(registers=4, context=4, spill_mode="live")
        for seg in (frame_mode, live_mode):
            a = seg.begin_context()
            b = seg.begin_context()
            seg.switch_to(a)
            seg.write(0, 1)       # one live register of four
            seg.switch_to(b)      # evict a (1 live of 4)
            seg.switch_to(a)      # evict b (empty)
        assert frame_mode.stats.registers_spilled == 8
        assert live_mode.stats.registers_spilled == 1
        assert frame_mode.stats.live_registers_spilled == 1
        assert live_mode.stats.live_registers_spilled == 1

    def test_switch_hit_never_moves_registers(self):
        seg = make(registers=8, context=4)  # two frames
        a = seg.begin_context()
        b = seg.begin_context()
        seg.switch_to(a)
        seg.write(0, 1)
        seg.switch_to(b)
        seg.write(0, 2)
        before = seg.stats.registers_spilled
        for _ in range(10):
            seg.switch_to(a)
            seg.switch_to(b)
        assert seg.stats.registers_spilled == before


class TestConventionalDetails:
    def test_alternating_contexts_swap_every_time(self):
        conv = ConventionalRegisterFile(num_registers=4)
        a = conv.begin_context()
        b = conv.begin_context()
        conv.switch_to(a)
        conv.write(0, 1)
        conv.switch_to(b)
        conv.write(0, 2)
        for expected, cid in ((1, a), (2, b), (1, a)):
            conv.switch_to(cid)
            assert conv.read(0)[0] == expected
        # Both contexts have been evicted repeatedly.
        assert conv.stats.switch_misses >= 4

    def test_stats_capacity_matches_file(self):
        conv = ConventionalRegisterFile(num_registers=128,
                                        context_size=20)
        assert conv.stats.capacity == 20

    def test_occupancy_semantics(self):
        conv = ConventionalRegisterFile(num_registers=8)
        a = conv.begin_context()
        conv.switch_to(a)
        conv.write(0, 1)
        conv.write(5, 1)
        assert conv.active_register_count() == 2
        assert conv.resident_context_count() == 1
