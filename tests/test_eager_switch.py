"""Unit tests for eager (interleaved) thread switching and markdown
rendering added to the tables API."""

import pytest

from repro.core import NamedStateRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.runtime import ThreadMachine


def machine(eager):
    rf = NamedStateRegisterFile(num_registers=128, context_size=32)
    return ThreadMachine(rf, eager_switch=eager)


class TestEagerSwitch:
    def _pingpong(self, eager):
        m = machine(eager)
        a_to_b = m.future(name="a2b")
        b_to_a = m.future(name="b2a")

        def first(act):
            r, = act.args(1)
            m.put_reg(act, a_to_b, r)
            value = yield m.wait(b_to_a)
            return value

        def second(act):
            value = yield m.wait(a_to_b)
            r, = act.args(value + 1)
            m.put_reg(act, b_to_a, r)
            return value

        t1 = m.spawn(first)
        t2 = m.spawn(second)
        m.run()
        return m, (t1.result.value, t2.result.value)

    def test_results_identical(self):
        _, block = self._pingpong(False)
        _, eager = self._pingpong(True)
        assert block == eager == (2, 1)

    def test_eager_switches_at_least_as_often(self):
        block_machine, _ = self._pingpong(False)
        eager_machine, _ = self._pingpong(True)
        assert (eager_machine.regfile.stats.context_switches
                >= block_machine.regfile.stats.context_switches)

    def test_resolved_wait_rotates_when_eager(self):
        m = machine(eager=True)
        gate = m.future()
        gate._resolve(7)
        order = []

        def reader(act, tag):
            value = yield m.wait(gate)   # already resolved
            order.append(tag)
            return value

        threads = [m.spawn(reader, tag) for tag in ("a", "b", "c")]
        m.run()
        assert [t.result.value for t in threads] == [7, 7, 7]
        # Eager mode rotated: no thread ran to completion while others
        # were ready, so completion order interleaves spawn order.
        assert order == ["a", "b", "c"]

    def test_block_mode_continues_on_resolved_wait(self):
        m = machine(eager=False)
        gate = m.future()
        gate._resolve(3)

        def reader(act):
            first = yield m.wait(gate)
            second = yield m.wait(gate)
            return first + second

        t = m.spawn(reader)
        switches_before = m.regfile.stats.context_switches
        m.run()
        assert t.result.value == 6
        # One switch in; resolved waits did not rotate.
        assert m.regfile.stats.context_switches == switches_before + 1


class TestMarkdownRendering:
    def test_markdown_table(self):
        t = ExperimentTable("Figure 0", "demo", headers=["k", "v"],
                            notes="note here")
        t.add_row("x", 1.25)
        text = t.to_markdown()
        assert "### Figure 0: demo" in text
        assert "| k | v |" in text
        assert "| x | 1.25 |" in text
        assert "*note here*" in text

    def test_markdown_cli(self, capsys):
        from repro.evalx.report import main

        assert main(["--experiment", "fig06",
                     "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "### Figure 6" in out
        assert "| Organization |" in out
