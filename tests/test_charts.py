"""Tests for the ASCII chart renderers."""

import pytest

from repro.evalx.charts import bar_chart, chart_for, line_chart
from repro.evalx.tables import ExperimentTable


class TestBarChart:
    def test_basic(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10,
                         title="T", unit="%")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "##########" in lines[2]   # the max fills the width
        assert "2%" in lines[2]
        assert lines[1].count("#") == 5   # half

    def test_zero_values(self):
        text = bar_chart(["x"], [0.0])
        assert "|" in text

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])


class TestLineChart:
    def test_shape(self):
        text = line_chart([1, 2, 3], {"s": [1.0, 2.0, 3.0]},
                          width=20, height=5, title="L")
        lines = text.splitlines()
        assert lines[0] == "L"
        body = [ln for ln in lines if "|" in ln]
        assert len(body) == 5
        assert "s = s" in text or "o = s" in text

    def test_log_scale_handles_zero(self):
        text = line_chart([1, 2], {"s": [0.0, 100.0]}, log_y=True)
        assert "log scale" in text

    def test_multiple_series_use_distinct_marks(self):
        text = line_chart([1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "o = a" in text and "x = b" in text

    def test_flat_series(self):
        text = line_chart([1, 2, 3], {"s": [5, 5, 5]})
        assert "|" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1]})

    def test_no_series(self):
        with pytest.raises(ValueError):
            line_chart([1], {})


class TestChartFor:
    def test_fig10_maps_to_bars(self):
        t = ExperimentTable("Figure 10", "x",
                            headers=["Benchmark", "Type", "NSF %",
                                     "Segment %", "Segment live %",
                                     "Segment/NSF"])
        t.add_row("GateSim", "Sequential", 0.0, 20.0, 5.0, "inf")
        chart = chart_for(t)
        assert chart and "GateSim" in chart

    def test_fig12_maps_to_lines(self):
        t = ExperimentTable("Figure 12", "x",
                            headers=["Frames", "Seq NSF %",
                                     "Seq Segment %", "Par NSF %",
                                     "Par Segment %"])
        t.add_row(2, 0.1, 80.0, 20.0, 250.0)
        t.add_row(4, 0.0, 20.0, 18.0, 240.0)
        chart = chart_for(t)
        assert chart and "log scale" in chart

    def test_unknown_experiment_returns_none(self):
        t = ExperimentTable("Table 1", "x", headers=["a"])
        assert chart_for(t) is None
