"""Tests for the multiprocessor cluster runtime."""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.errors import DeadlockError
from repro.runtime import Cluster


def make_cluster(num_nodes=4, network_latency=100, registers=128):
    return Cluster(
        num_nodes,
        lambda i: NamedStateRegisterFile(num_registers=registers,
                                         context_size=32),
        network_latency=network_latency,
    )


class TestConstruction:
    def test_nodes(self):
        cluster = make_cluster(3)
        assert len(cluster) == 3
        assert cluster.node(1).node_id == 1
        assert cluster.node(0).regfile is not cluster.node(1).regfile

    def test_needs_one_node(self):
        with pytest.raises(ValueError):
            make_cluster(0)


class TestExecution:
    def test_single_node_cluster_behaves_like_machine(self):
        cluster = make_cluster(1)

        def body(act, n):
            r, = act.args(n)
            act.muli(r, r, 2)
            yield cluster.node(0).remote(0)
            return act.test(r)

        thread = cluster.spawn_on(0, body, 21)
        cluster.run()
        assert thread.result.value == 42

    def test_threads_run_on_their_nodes(self):
        cluster = make_cluster(4)
        seen = []

        def body(act, i):
            machine = act.machine
            seen.append((i, machine.node_id))
            yield machine.remote(0)
            return i

        threads = cluster.spawn_round_robin(range(8), body)
        cluster.run()
        assert [t.result.value for t in threads] == list(range(8))
        assert sorted(node for _, node in seen) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_cross_node_future_carries_value(self):
        cluster = make_cluster(2, network_latency=250)
        node0 = cluster.node(0)
        node1 = cluster.node(1)
        fut = node0.future(name="cross")

        def producer(act):
            value, = act.args(7)
            act.muli(value, value, 6)
            yield act.machine.remote(0)
            act.machine.put_reg(act, fut, value)

        def consumer(act):
            value = yield act.machine.wait(fut)
            return value

        consumer_thread = cluster.spawn_on(1, consumer)
        cluster.spawn_on(0, producer)
        cluster.run()
        assert consumer_thread.result.value == 42
        assert node1.messages_received >= 1

    def test_network_latency_delays_wakeup(self):
        makespans = {}
        for latency in (10, 2000):
            cluster = make_cluster(2, network_latency=latency)
            fut = cluster.node(0).future()

            def producer(act):
                yield act.machine.remote(0)
                act.machine.put(fut, 1)

            def consumer(act):
                value = yield act.machine.wait(fut)
                return value

            cluster.spawn_on(1, consumer)
            cluster.spawn_on(0, producer)
            cluster.run()
            makespans[latency] = cluster.makespan()
        assert makespans[2000] > makespans[10]

    def test_cluster_deadlock_detection(self):
        cluster = make_cluster(2)
        never = cluster.node(0).future()

        def body(act):
            yield act.machine.wait(never)

        cluster.spawn_on(1, body)
        with pytest.raises(DeadlockError):
            cluster.run()

    def test_map_reduce_across_nodes(self):
        cluster = make_cluster(4)
        node0 = cluster.node(0)
        parts = [node0.future(name=f"part{i}") for i in range(8)]

        def mapper(act, spec):
            index, lo, hi = spec
            total, i = act.alloc_many(["total", "i"])
            act.let(total, 0)
            for v in range(lo, hi):
                act.let(i, v)
                act.add(total, total, i)
            # Staggered completion: later parts arrive much later, so
            # the reducer truly blocks and is woken over the network.
            yield act.machine.remote(500 + 400 * index)
            act.machine.put_reg(act, parts[index], total)

        def reducer(act):
            grand, part = act.alloc_many(["grand", "part"])
            act.let(grand, 0)
            for fut in parts:
                value = yield act.machine.wait(fut)
                act.let(part, value)
                act.add(grand, grand, part)
            return act.test(grand)

        specs = [(i, i * 10, (i + 1) * 10) for i in range(8)]
        cluster.spawn_round_robin(specs, mapper)
        reduce_thread = cluster.spawn_on(0, reducer)
        cluster.run()
        assert reduce_thread.result.value == sum(range(80))
        assert cluster.total_messages() > 0
        assert cluster.total_instructions() > 0

    def test_per_node_register_files_independent(self):
        cluster = Cluster(
            2,
            lambda i: (NamedStateRegisterFile(num_registers=128,
                                              context_size=32)
                       if i == 0 else
                       SegmentedRegisterFile(num_registers=128,
                                             context_size=32)),
        )

        def busy(act, i):
            regs = act.alloc_many(6)
            for k, r in enumerate(regs):
                act.let(r, i * 10 + k)
            for _ in range(4):
                yield act.machine.remote(20)
                for r in regs:
                    act.addi(r, r, 1)
            return act.test(regs[0])

        threads = [cluster.spawn_on(i % 2, busy, i) for i in range(12)]
        cluster.run()
        assert all(t.result.resolved for t in threads)
        nsf_stats, seg_stats = cluster.stats_by_node()
        assert seg_stats.registers_reloaded >= nsf_stats.registers_reloaded
