"""Legacy setup shim: enables `pip install -e .` on toolchains without
PEP 660 editable-wheel support (this environment has no network to
fetch `wheel`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of the Named-State Register File (Nuth & Dally, "
        "HPCA 1995)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
