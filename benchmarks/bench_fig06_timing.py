"""Figure 6: access times of segmented and NSF register files."""

from conftest import run_table


def test_fig06_access_time(benchmark, record_table):
    table = run_table(benchmark, "fig06")
    record_table(table, "fig06")
    print()
    print(table.render())

    ratios = [float(r.rstrip("x")) for r in table.column("vs Segment")]
    nsf_ratios = [r for r in ratios if r != 1.0]
    # Paper: "only 5% or 6% greater" — accept a 3-9% band.
    for ratio in nsf_ratios:
        assert 1.03 <= ratio <= 1.09
    # Totals in the figure's ballpark (ns).
    for total in table.column("Total"):
        assert 7.0 <= total <= 11.0
