"""Ablation: NSF design choices the paper calls out.

* victim selection (the paper simulates LRU; §4.2 notes other
  strategies are possible) — LRU vs FIFO vs random;
* write-miss policy — write-allocate (paper default) vs fetch-on-write.
"""

import pytest

from repro.core import NamedStateRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.workloads import get_workload

SCALE = 0.5


def _run_policy(policy):
    workload = get_workload("Gamteb")
    nsf = NamedStateRegisterFile(num_registers=128, context_size=32,
                                 policy=policy, policy_seed=7)
    workload.run(nsf, scale=SCALE, seed=1)
    return nsf.stats


def test_victim_policy_ablation(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Ablation A",
            title="NSF victim policy (Gamteb, 128 registers)",
            headers=["Policy", "Reloads/instr %", "Spills/instr %"],
        )
        for policy in ("lru", "fifo", "random", "nmru"):
            stats = _run_policy(policy)
            table.add_row(
                policy.upper(),
                round(100 * stats.reloads_per_instruction, 3),
                round(100 * stats.spills_per_instruction, 3),
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "ablation_policies")
    print()
    print(table.render())

    rates = dict(zip(table.column("Policy"),
                     table.column("Reloads/instr %")))
    # LRU and FIFO behave alike under round-robin thread scheduling.
    assert rates["LRU"] <= rates["FIFO"] * 1.15
    # Noteworthy reproduction finding: random replacement *beats* LRU
    # here — a block-multithreaded processor cycling through more
    # threads than fit is LRU's classic pathological (cyclic) pattern.
    # The paper simulated LRU only; this ablation quantifies the choice.
    for rate in rates.values():
        assert rate > 0


def test_write_miss_policy_ablation(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Ablation B",
            title="NSF write-miss policy (Gamteb, 128 registers)",
            headers=["Policy", "Reloads/instr %"],
        )
        workload = get_workload("Gamteb")
        for fetch, label in ((False, "write-allocate"),
                             (True, "fetch-on-write")):
            nsf = NamedStateRegisterFile(num_registers=128,
                                         context_size=32,
                                         fetch_on_write=fetch)
            workload.run(nsf, scale=SCALE, seed=1)
            table.add_row(
                label,
                round(100 * nsf.stats.reloads_per_instruction, 3),
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "ablation_write_miss")
    print()
    print(table.render())

    rates = dict(zip(table.column("Policy"),
                     table.column("Reloads/instr %")))
    # Fetch-on-write can only add traffic (§4.2 motivates
    # write-allocate as the default).
    assert rates["write-allocate"] <= rates["fetch-on-write"]
