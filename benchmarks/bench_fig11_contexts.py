"""Figure 11: average resident contexts vs register file size."""

from conftest import run_table


def test_fig11_resident_contexts(benchmark, record_table):
    table = run_table(benchmark, "fig11")
    record_table(table, "fig11")
    print()
    print(table.render())

    for row in table.rows:
        frames = row[0]
        seq_nsf = row[table.headers.index("Seq NSF")]
        seq_seg = row[table.headers.index("Seq Segment")]
        par_seg = row[table.headers.index("Par Segment")]
        # A segmented file can never hold more contexts than frames;
        # the paper measures ~0.7N.
        assert seq_seg <= frames
        assert par_seg <= frames
        # While capacity binds, the NSF packs more contexts.
        if frames <= 5:
            assert seq_nsf > seq_seg

    # Paper: the NSF holds more than 2N contexts for sequential code.
    small = table.rows[0]
    assert small[table.headers.index("Seq NSF")] >= 1.5 * small[0]
