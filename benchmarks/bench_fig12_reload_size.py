"""Figure 12: reload traffic vs register file size."""

from conftest import run_table


def test_fig12_reloads_vs_size(benchmark, record_table):
    table = run_table(benchmark, "fig12")
    record_table(table, "fig12")
    print()
    print(table.render())

    seq_nsf = table.headers.index("Seq NSF %")
    seq_seg = table.headers.index("Seq Segment %")
    par_nsf = table.headers.index("Par NSF %")
    par_seg = table.headers.index("Par Segment %")
    for row in table.rows:
        assert row[seq_nsf] <= row[seq_seg]
        assert row[par_nsf] <= row[par_seg]

    # Traffic falls (weakly) with size for the segmented file.
    seg_series = table.column("Seq Segment %")
    assert seg_series[0] >= seg_series[-1]

    # Paper §7.2.2: a moderate NSF holds the entire call chain of a
    # sequential program with almost no spilling.
    assert table.rows[-1][seq_nsf] < 0.01

    # Paper: the NSF beats a segmented file twice its size (parallel).
    for i in range(len(table.rows) - 2):
        assert table.rows[i][par_nsf] <= table.rows[i + 2][par_seg]
