"""Ablation: explicit register deallocation (rfree, NSF §4.2).

Compiles a register-hungry program with and without compiler-inserted
``rfree`` at last-use points and runs it on a small NSF: freeing dead
registers shrinks each activation's footprint, which lets the file hold
more of the call chain and cuts spill traffic — at the price of the
extra deallocation instructions.
"""

from repro.core import NamedStateRegisterFile
from repro.cpu import CPU
from repro.evalx.tables import ExperimentTable
from repro.lang import compile_source

SOURCE = """
func crunch(n, depth) {
  var a = n * 3;
  var b = a + n;
  var c = b * 2 - a;
  var d = c + b - n;
  var e = d * a % 9973;
  if (depth > 0) {
    e = e + crunch(n + 1, depth - 1);
  }
  var f = e * 2 % 9973;
  var g = f + d;
  return g % 9973;
}
func main() {
  var total = 0;
  var i = 0;
  while (i < 12) {
    total = (total + crunch(i, 6)) % 9973;
    i = i + 1;
  }
  return total;
}
"""


def test_rfree_ablation(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Ablation E",
            title="Compiler-inserted rfree on a small NSF (40 regs)",
            headers=["rfree", "Instructions", "Max active regs",
                     "Avg utilization %", "Reloads/instr %", "Result"],
        )
        for emit in (False, True):
            compiled = compile_source(SOURCE, emit_rfree=emit)
            rf = NamedStateRegisterFile(num_registers=40,
                                        context_size=20)
            cpu = CPU(compiled.program, rf)
            result = cpu.run()
            stats = rf.stats
            table.add_row(
                "on" if emit else "off",
                result.instructions,
                stats.max_active_registers,
                round(100 * stats.utilization_avg, 1),
                round(100 * stats.reloads_per_instruction, 3),
                result.return_value,
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "ablation_rfree")
    print()
    print(table.render())

    off, on = table.rows
    result_col = table.headers.index("Result")
    assert off[result_col] == on[result_col]  # same answer
    # Deallocation shrinks the live footprint...
    max_col = table.headers.index("Max active regs")
    assert on[max_col] <= off[max_col]
    # ...at the price of extra instructions.
    instr_col = table.headers.index("Instructions")
    assert on[instr_col] > off[instr_col]
