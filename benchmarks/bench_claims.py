"""Section 9: every quantitative conclusion of the paper, re-verified."""

from conftest import run_table


def test_conclusion_claims(benchmark, record_table):
    table = run_table(benchmark, "claims")
    record_table(table, "claims")
    print()
    print(table.render())

    assert len(table.rows) == 6
    for row in table.rows:
        assert row[-1] == "yes", f"claim failed: {row[0]}"
