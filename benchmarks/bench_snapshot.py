"""Microbenchmarks of the checkpoint/restore path.

Snapshots sit on the resumable-sweep critical path (every journalled
cell can capture at its boundary), so capture, restore and the framed
serializer are tracked like any other hot path.
"""

import pytest

from repro.core import (
    NamedStateRegisterFile,
    SegmentedRegisterFile,
    dumps,
    integrity_hash,
    loads,
)


def _warm_model(model, contexts=6, writes=24):
    cids = [model.begin_context() for _ in range(contexts)]
    for k, cid in enumerate(cids):
        for i in range(writes):
            model.write(i % 8, k * 1000 + i, cid=cid)
    for cid in cids:
        model.read(0, cid=cid)
    return model


@pytest.mark.parametrize("model_cls,kwargs", [
    (NamedStateRegisterFile, {"line_size": 2}),
    (SegmentedRegisterFile, {}),
], ids=["nsf-line2", "segmented"])
def test_capture_throughput(benchmark, model_cls, kwargs):
    model = _warm_model(
        model_cls(num_registers=64, context_size=16, **kwargs))
    state = benchmark(model.capture)
    assert state["kind"] in ("nsf", "segmented")


def test_restore_throughput(benchmark):
    model = _warm_model(
        NamedStateRegisterFile(num_registers=64, context_size=16,
                               line_size=2))
    state = model.capture()
    fresh = NamedStateRegisterFile(num_registers=64, context_size=16,
                                   line_size=2)
    benchmark(fresh.restore, state)
    assert integrity_hash(fresh.capture()) == integrity_hash(state)


def test_serializer_round_trip_throughput(benchmark):
    model = _warm_model(
        NamedStateRegisterFile(num_registers=64, context_size=16,
                               line_size=2))
    state = model.capture()

    def round_trip():
        return loads(dumps(state))

    decoded = benchmark(round_trip)
    assert decoded == state
