"""Design-space oracle grid benchmark and gate.

Two committed contracts under the ``oracle_grid`` key of
BENCH_baseline.json, both same-box ratios (machine-independent, safe
to gate in CI):

* ``grid_speedup`` — a fig09..fig14-style design-space grid (NSF line
  sizes 1/2/4 x {LRU, FIFO} plus segmented {frame, live} x {LRU,
  FIFO}, each over a capacity sweep straddling the trace's peak
  demand) evaluated end to end two ways: every cell through
  :func:`repro.trace.oracle.serve_from_tables` (one shared scan per
  design family, O(1) table apply per cell) vs every cell through
  :func:`repro.trace.columnar.replay_columnar` (the engine sweep
  drivers used before the design-space tables existed; sub-peak,
  wide-line and segmented cells fall back to event-exact replay
  there).  The oracle grid must come in **>= 5x** faster — the
  "whole design space for a few passes" contract.
* ``vector_speedup`` — the NumPy windowed-stack Mattson kernel
  (:func:`repro.trace.vector.lru_scan`) vs the pure-stdlib Fenwick
  walk (:func:`repro.trace.oracle._scan_lru`) on the same trace and
  sub-peak capacity grid, reported per line size and baseline-gated
  on the compiled-CPU line-size-1 scan.

Every oracle-served cell is checked (outside the timed region) to be
snapshot-identical to the per-cell replay before anything is timed —
a fast wrong answer is not a speedup.

Usage::

    python benchmarks/bench_oracle_grid.py                  # report
    python benchmarks/bench_oracle_grid.py --write-baseline # refresh
    python benchmarks/bench_oracle_grid.py --check          # CI gate

``--write-baseline`` merges only the ``oracle_grid`` key and leaves
every other benchmark's key untouched.
"""

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.evalx.common import make_nsf
from repro.trace import TracingRegisterFile
from repro.trace import columnar, oracle, vector
from repro.workloads.compiled import CompiledSuite

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

SEED = 11
REPEATS = 3
TOLERANCE = 1.5

#: hard floor independent of the recorded baseline
MIN_GRID_SPEEDUP = 5.0

#: frames of context per capacity point (registers = frames x context
#: size), straddling the compiled trace's peak demand
FRAME_SWEEP = (1, 2, 3, 4, 6, 8)
NSF_LINE_SIZES = (1, 2, 4)
POLICIES = ("lru", "fifo")
SEG_MODES = ("frame", "live")


def _best_times(fns, repeats=REPEATS):
    """Minimum wall time per function over ``repeats`` interleaved runs
    (interleaved so background-load drift lands on both sides)."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _record():
    workload = CompiledSuite()
    tracer = TracingRegisterFile(make_nsf(workload))
    workload.run(tracer, scale=1.0, seed=SEED)
    return tracer.trace


def _grid(ctx):
    """(register budgets, cell descriptors) for the design-space grid."""
    budgets = tuple(frames * ctx for frames in FRAME_SWEEP)
    cells = []
    for line_size in NSF_LINE_SIZES:
        for policy in POLICIES:
            cells.extend(("nsf", line_size, policy, budget)
                         for budget in budgets)
    for spill_mode in SEG_MODES:
        for policy in POLICIES:
            cells.extend(("seg", spill_mode, policy, budget)
                         for budget in budgets)
    return budgets, cells


def _build(cell, ctx):
    kind, variant, policy, budget = cell
    if kind == "nsf":
        return NamedStateRegisterFile(
            num_registers=budget, context_size=ctx,
            line_size=variant, policy=policy)
    return SegmentedRegisterFile(
        num_registers=budget, context_size=ctx,
        policy=policy, spill_mode=variant)


def _snapshot(model):
    snap = dict(vars(model.stats))
    snap["words_loaded"] = model.backing.words_loaded
    snap["words_stored"] = model.backing.words_stored
    return snap


def run_grid(trace):
    ctx = trace.context_size
    budgets, cells = _grid(ctx)

    # correctness first: every oracle-served cell must be
    # snapshot-identical to the per-cell replay it replaces
    oracle._TABLE_MEMO.clear()
    columnar._ANALYSES.clear()
    for cell in cells:
        served = _build(cell, ctx)
        assert oracle.serve_from_tables(trace, served, budgets), \
            f"grid cell fell out of the oracle regime: {cell}"
        replayed = columnar.replay_columnar(trace, _build(cell, ctx))
        assert _snapshot(served) == _snapshot(replayed), \
            f"oracle snapshot deviates from replay: {cell}"

    def oracle_pass():
        oracle._TABLE_MEMO.clear()
        for cell in cells:
            oracle.serve_from_tables(trace, _build(cell, ctx), budgets)

    def columnar_pass():
        columnar._ANALYSES.clear()
        for cell in cells:
            columnar.replay_columnar(trace, _build(cell, ctx))

    oracle_t, columnar_t = _best_times([oracle_pass, columnar_pass])
    return {
        "workload": "CompiledSuite",
        "events": len(trace),
        "cells": len(cells),
        "families": len(NSF_LINE_SIZES) * len(POLICIES)
                    + len(SEG_MODES) * len(POLICIES),
        "budgets": list(budgets),
        "oracle_grid_ms": round(oracle_t * 1e3, 3),
        "per_cell_replay_ms": round(columnar_t * 1e3, 3),
        "grid_speedup": round(columnar_t / oracle_t, 2),
    }


def run_vector(trace):
    analysis = columnar.analyze(trace)
    peak = analysis.peak_lines if analysis else 40
    grid = sorted({max(1, peak * (i + 1) // 7) for i in range(6)})
    rows = {}
    for line_size in NSF_LINE_SIZES:
        caps = sorted({max(1, c // line_size) for c in grid})

        def vec():
            assert vector.lru_scan(trace, caps, 4, line_size) is not None

        def scalar():
            oracle._scan_lru(trace, caps, 4, line_size, tables=False)

        vec_t, scalar_t = _best_times([vec, scalar])
        rows[f"line{line_size}"] = {
            "capacities": caps,
            "vector_ms": round(vec_t * 1e3, 3),
            "scalar_ms": round(scalar_t * 1e3, 3),
            "speedup": round(scalar_t / vec_t, 2),
        }
    return {"workload": "CompiledSuite",
            "vector_speedup": rows["line1"]["speedup"],
            **rows}


def measure():
    trace = _record()
    grid = run_grid(trace)
    kernel = run_vector(trace)
    return {"oracle_grid": {"grid": grid, "kernel": kernel}}


def report(results, stream=sys.stdout):
    grid = results["oracle_grid"]["grid"]
    stream.write(
        f"oracle-grid: {grid['cells']} cells / {grid['families']} "
        f"families over {grid['events']:,} events — tables "
        f"{grid['oracle_grid_ms']}ms vs per-cell replay "
        f"{grid['per_cell_replay_ms']}ms "
        f"({grid['grid_speedup']:.1f}x)\n")
    kernel = results["oracle_grid"]["kernel"]
    for name in ("line1", "line2", "line4"):
        row = kernel[name]
        stream.write(
            f"vector-kernel/{name}: {row['vector_ms']}ms vs scalar "
            f"{row['scalar_ms']}ms ({row['speedup']:.1f}x) over "
            f"capacities {row['capacities']}\n")


def check(results, baseline, tolerance=TOLERANCE, stream=sys.stdout):
    """True when the grid holds its hard floor and the kernel its
    baseline-relative floor (``baseline / tolerance``)."""
    base = baseline["oracle_grid"]
    ok = True

    floor = max(MIN_GRID_SPEEDUP,
                base["grid"]["grid_speedup"] / tolerance)
    got = results["oracle_grid"]["grid"]["grid_speedup"]
    verdict = "ok" if got >= floor else "REGRESSION"
    ok = ok and got >= floor
    stream.write(f"check oracle-grid.grid_speedup: {got:.1f}x "
                 f"(baseline {base['grid']['grid_speedup']:.1f}x, "
                 f"floor {floor:.1f}x) {verdict}\n")

    floor = base["kernel"]["vector_speedup"] / tolerance
    got = results["oracle_grid"]["kernel"]["vector_speedup"]
    verdict = "ok" if got >= floor else "REGRESSION"
    ok = ok and got >= floor
    stream.write(f"check oracle-grid.vector_speedup: {got:.1f}x "
                 f"(baseline {base['kernel']['vector_speedup']:.1f}x, "
                 f"floor {floor:.1f}x) {verdict}\n")
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the design-space oracle grid against "
                    "per-cell replay, gating against "
                    "BENCH_baseline.json.")
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and refresh the oracle_grid key")
    parser.add_argument("--check", action="store_true",
                        help="measure and fail on regression")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed baseline/measured ratio drift")
    args = parser.parse_args(argv)

    if not columnar.numpy_available():
        print("numpy unavailable: oracle grid benchmark skipped "
              "(install the perf extra)", file=sys.stderr)
        return 0

    results = measure()
    report(results)

    if args.write_baseline:
        merged = (json.loads(BASELINE_PATH.read_text())
                  if BASELINE_PATH.exists() else {})
        merged.update(results)
        BASELINE_PATH.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"baseline key 'oracle_grid' written to {BASELINE_PATH}")
        return 0
    if args.check:
        baseline = (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else {})
        if "oracle_grid" not in baseline:
            print("no 'oracle_grid' key in BENCH_baseline.json; run "
                  "--write-baseline first", file=sys.stderr)
            return 2
        if not check(results, baseline, tolerance=args.tolerance):
            print("perf regression vs BENCH_baseline.json",
                  file=sys.stderr)
            return 1
        print("bench-check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
