"""Columnar replay engine + stack-distance oracle benchmark and gate.

Two committed contracts, each a same-box ratio (machine-independent,
safe to gate in CI):

* ``columnar_replay`` — one replay of a recorded trace through the
  columnar engine vs the scalar packed event loop.  The gated number
  is the *shared-analysis* replay (``speedup``): every consumer here
  (the sweep farm, ``oracle_sweep``, repeated ``run_workload`` cells)
  replays one trace against many models, and the whole-trace analysis
  is memoized per trace — so the marginal cost of a columnar replay
  is the O(registers) synthesis.  On the compiled-CPU trace that must
  hold **>= 10x**; ``cold_speedup`` (analysis inside the timed
  region, i.e. a trace replayed exactly once) is reported and
  baseline-gated.  The activation-machine trace (GateSim) is
  baseline-gated only — its larger register population makes
  synthesis a bigger fraction of a smaller total.
* ``oracle_sweep`` — a fig11-style 6-point capacity sweep served by
  :func:`repro.trace.oracle.oracle_sweep` (one shared analysis + one
  O(1) stats apply per cell) vs the cost of a *single* cold
  columnar scan.  The sweep must cost **<= 1.5x** the single scan —
  the "N-cell sweep for the price of one pass" contract.  All six
  capacities sit at or above the trace's peak register demand, which
  is exactly the regime the paper's fig11 grid occupies (the NSF
  rarely spills); for the sub-peak regime the same run reports
  ``curves_speedup``: :func:`capacity_curves`' one Fenwick pass vs an
  event-exact replay per capacity, baseline-gated.

Usage::

    python benchmarks/bench_columnar.py                  # report
    python benchmarks/bench_columnar.py --write-baseline # refresh
    python benchmarks/bench_columnar.py --check          # CI gate

Results live under the ``columnar_replay`` and ``oracle_sweep`` keys
of BENCH_baseline.json; ``--write-baseline`` merges those two keys and
leaves every other benchmark's key untouched.
"""

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import NamedStateRegisterFile
from repro.evalx.common import make_nsf
from repro.trace import TracingRegisterFile, replay
from repro.trace import columnar, oracle
from repro.workloads import get_workload
from repro.workloads.compiled import CompiledSuite

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

SEED = 11
REPEATS = 5
TOLERANCE = 1.5

#: hard floors/ceilings independent of the recorded baseline
MIN_COMPILED_SPEEDUP = 10.0
MAX_SWEEP_RATIO = 1.5

#: fig11-style capacity grid (frames x 20-register contexts), all at
#: or above the compiled trace's peak demand
SWEEP_CAPACITIES = (40, 80, 120, 160, 200, 240)


def _best_times(fns, repeats=REPEATS):
    """Minimum wall time per function over ``repeats`` interleaved runs
    (interleaved so background-load drift lands on both sides)."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _record(workload):
    tracer = TracingRegisterFile(make_nsf(workload))
    scale = 1.0 if workload.name == "CompiledSuite" else 0.35
    workload.run(tracer, scale=scale, seed=SEED)
    return tracer.trace


def _get_workload(name):
    return CompiledSuite() if name == "CompiledSuite" else get_workload(name)


def _replay_case(workload_name):
    workload = _get_workload(workload_name)
    trace = _record(workload)

    def scalar():
        replay(trace, make_nsf(workload), verify=False)

    def cold():
        columnar._ANALYSES.clear()
        columnar.replay_columnar(trace, make_nsf(workload))

    def warm():
        columnar.replay_columnar(trace, make_nsf(workload))

    scalar_t, cold_t = _best_times([scalar, cold])
    columnar.analyze(trace)  # prime the memo
    (warm_t,) = _best_times([warm])
    assert columnar.apply_analysis(columnar.analyze(trace),
                                   make_nsf(workload)), \
        "bench trace fell out of the synthesis regime"
    return {
        "workload": workload_name,
        "events": len(trace),
        "scalar_ms": round(scalar_t * 1e3, 3),
        "columnar_cold_ms": round(cold_t * 1e3, 3),
        "columnar_warm_ms": round(warm_t * 1e3, 3),
        "speedup": round(scalar_t / warm_t, 2),
        "cold_speedup": round(scalar_t / cold_t, 2),
    }


def run_columnar_replay():
    return {
        "compiled": _replay_case("CompiledSuite"),
        "gatesim": _replay_case("GateSim"),
    }


def run_oracle_sweep():
    workload = CompiledSuite()
    trace = _record(workload)
    ctx = trace.context_size
    peak = columnar.analyze(trace).peak_lines
    configurations = [{"num_registers": n} for n in SWEEP_CAPACITIES]

    def factory(num_registers):
        return NamedStateRegisterFile(
            num_registers=num_registers, context_size=ctx, line_size=1)

    def single_scan():
        columnar._ANALYSES.clear()
        columnar.replay_columnar(trace, factory(SWEEP_CAPACITIES[0]))

    def oracle_pass():
        columnar._ANALYSES.clear()
        oracle.oracle_sweep(trace, factory, configurations)

    def event_pass():
        for config in configurations:
            replay(trace, factory(**config), verify=False)

    scan_t, oracle_t, event_t = _best_times(
        [single_scan, oracle_pass, event_pass])

    # sub-peak regime: the one-pass Fenwick curves vs one event-exact
    # replay per capacity point
    sub_grid = [max(1, peak * (i + 1) // 7) for i in range(6)]
    sub_grid = sorted(set(sub_grid))

    def curves_pass():
        oracle.capacity_curves(trace, sub_grid)

    def event_sub_pass():
        for capacity in sub_grid:
            replay(trace, factory(capacity), verify=False)

    curves_t, event_sub_t = _best_times([curves_pass, event_sub_pass])
    return {
        "workload": "CompiledSuite",
        "cells": len(configurations),
        "capacities": list(SWEEP_CAPACITIES),
        "peak_lines": peak,
        "single_scan_ms": round(scan_t * 1e3, 3),
        "oracle_sweep_ms": round(oracle_t * 1e3, 3),
        "event_sweep_ms": round(event_t * 1e3, 3),
        "sweep_vs_scan_ratio": round(oracle_t / scan_t, 3),
        "sweep_speedup_vs_event": round(event_t / oracle_t, 2),
        "subpeak_capacities": sub_grid,
        "curves_ms": round(curves_t * 1e3, 3),
        "event_subpeak_ms": round(event_sub_t * 1e3, 3),
        "curves_speedup": round(event_sub_t / curves_t, 2),
    }


def measure():
    return {
        "columnar_replay": run_columnar_replay(),
        "oracle_sweep": run_oracle_sweep(),
    }


def report(results, stream=sys.stdout):
    for name, row in results["columnar_replay"].items():
        stream.write(
            f"columnar/{name}: {row['events']:,} events, scalar "
            f"{row['scalar_ms']}ms vs columnar {row['columnar_warm_ms']}"
            f"ms shared-analysis / {row['columnar_cold_ms']}ms cold "
            f"({row['speedup']:.1f}x shared, {row['cold_speedup']:.1f}x"
            f" cold)\n")
    osw = results["oracle_sweep"]
    stream.write(
        f"oracle/sweep: {osw['cells']}-point capacity sweep "
        f"{osw['oracle_sweep_ms']}ms vs {osw['single_scan_ms']}ms "
        f"single columnar scan ({osw['sweep_vs_scan_ratio']:.2f}x the "
        f"scan; event sweep {osw['event_sweep_ms']}ms, "
        f"{osw['sweep_speedup_vs_event']:.1f}x faster)\n")
    stream.write(
        f"oracle/curves: sub-peak grid {osw['subpeak_capacities']} in "
        f"{osw['curves_ms']}ms one-pass vs {osw['event_subpeak_ms']}ms "
        f"event replays ({osw['curves_speedup']:.1f}x)\n")


def check(results, baseline, tolerance=TOLERANCE, stream=sys.stdout):
    """True when every ratio holds its floor/ceiling.

    Speedup floors are ``max(hard_floor, baseline / tolerance)``; the
    sweep-cost ceiling is ``min(hard_ceiling, baseline * tolerance)``
    — both contracts stay absolute even if the baseline drifts.
    """
    ok = True
    hard = {"compiled": MIN_COMPILED_SPEEDUP, "gatesim": 0.0}
    for name, base_row in baseline["columnar_replay"].items():
        for field, hard_floor in (("speedup", hard.get(name, 0.0)),
                                  ("cold_speedup", 0.0)):
            floor = max(hard_floor, base_row[field] / tolerance)
            got = results["columnar_replay"][name][field]
            verdict = "ok" if got >= floor else "REGRESSION"
            ok = ok and got >= floor
            stream.write(f"check columnar/{name}.{field}: {got:.1f}x "
                         f"(baseline {base_row[field]:.1f}x, floor "
                         f"{floor:.1f}x) {verdict}\n")

    base = baseline["oracle_sweep"]
    ceiling = min(MAX_SWEEP_RATIO,
                  base["sweep_vs_scan_ratio"] * tolerance)
    got = results["oracle_sweep"]["sweep_vs_scan_ratio"]
    verdict = "ok" if got <= ceiling else "REGRESSION"
    ok = ok and got <= ceiling
    stream.write(f"check oracle/sweep: {got:.2f}x the single scan "
                 f"(ceiling {ceiling:.2f}x) {verdict}\n")

    floor = base["curves_speedup"] / tolerance
    got = results["oracle_sweep"]["curves_speedup"]
    verdict = "ok" if got >= floor else "REGRESSION"
    ok = ok and got >= floor
    stream.write(f"check oracle/curves: {got:.1f}x (baseline "
                 f"{base['curves_speedup']:.1f}x, floor {floor:.1f}x) "
                 f"{verdict}\n")
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the columnar replay engine and the "
                    "stack-distance oracle, gating against "
                    "BENCH_baseline.json.")
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and refresh the columnar_replay "
                             "and oracle_sweep keys")
    parser.add_argument("--check", action="store_true",
                        help="measure and fail on regression")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed baseline/measured ratio drift")
    args = parser.parse_args(argv)

    if not columnar.numpy_available():
        print("numpy unavailable: columnar benchmarks skipped "
              "(install the perf extra)", file=sys.stderr)
        return 0

    results = measure()
    report(results)

    if args.write_baseline:
        merged = (json.loads(BASELINE_PATH.read_text())
                  if BASELINE_PATH.exists() else {})
        merged.update(results)
        BASELINE_PATH.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"baseline keys 'columnar_replay' + 'oracle_sweep' "
              f"written to {BASELINE_PATH}")
        return 0
    if args.check:
        baseline = (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else {})
        missing = [key for key in ("columnar_replay", "oracle_sweep")
                   if key not in baseline]
        if missing:
            print(f"no {missing} keys in BENCH_baseline.json; run "
                  "--write-baseline first", file=sys.stderr)
            return 2
        if not check(results, baseline, tolerance=args.tolerance):
            print("perf regression vs BENCH_baseline.json",
                  file=sys.stderr)
            return 1
        print("bench-check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
