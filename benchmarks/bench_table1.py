"""Table 1: benchmark program characteristics."""

from conftest import run_table


def test_table1_characteristics(benchmark, record_table):
    table = run_table(benchmark, "table1")
    record_table(table, "table1")
    print()
    print(table.render())

    assert len(table.rows) == 9
    kinds = table.column("Type")
    assert kinds.count("Sequential") == 3
    assert kinds.count("Parallel") == 6
    # Every benchmark actually executed work.
    for executed in table.column("Instructions executed"):
        assert executed > 500
    # Gamteb is the most fine-grained parallel program (paper: ~16
    # instructions per switch); AS and Wavefront are the coarsest.
    gamteb = table.lookup("Gamteb", "Avg instr per switch")
    assert gamteb < table.lookup("AS", "Avg instr per switch")
    assert gamteb < table.lookup("Wavefront", "Avg instr per switch")
