"""Extension: ISA-level block multithreading (§3's processor, executed).

Eight compiled programs share one processor as hardware threads.  The
scheduler switches on register-file stalls — so a segmented file, which
stalls on every frame swap, ping-pongs through the thread set paying a
frame of traffic per rotation, while the NSF interleaves almost for
free.  This reproduces Figure 14's parallel story with *compiled code*
instead of the activation-trace runtime: the second independent
front-end agreeing on the paper's conclusion.
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.cpu import MultithreadedCPU
from repro.evalx.tables import ExperimentTable
from repro.lang import compile_source

SOURCE = """
func fib(n) {{
    if (n < 2) {{ return n; }}
    return fib(n - 1) + fib(n - 2);
}}
func main() {{ return fib({n}); }}
"""

THREAD_NS = (8, 9, 10, 11, 12, 8, 9, 10)


def test_multithreaded_cpu(benchmark, record_table):
    def sweep():
        programs = [compile_source(SOURCE.format(n=n)).program
                    for n in THREAD_NS]
        table = ExperimentTable(
            experiment="Extension D",
            title="8 hardware threads on one CPU (compiled fib mix)",
            headers=["Model", "Cycles", "Thread switches",
                     "Reloads/instr %", "Cycles vs NSF"],
        )
        cycles = {}
        for model_cls, label in (
            (NamedStateRegisterFile, "nsf"),
            (SegmentedRegisterFile, "segmented"),
        ):
            regfile = model_cls(num_registers=80, context_size=20)
            cpu = MultithreadedCPU(
                [compile_source(SOURCE.format(n=n)).program
                 for n in THREAD_NS],
                regfile,
            )
            result = cpu.run()
            expected = [21, 34, 55, 89, 144, 21, 34, 55]
            assert result.return_values == expected
            cycles[label] = result.cycles
            table.add_row(
                label,
                result.cycles,
                result.thread_switches,
                round(100 * regfile.stats.reloads_per_instruction, 3),
                "1.00x" if label == "nsf" else
                f"{result.cycles / cycles['nsf']:.2f}x",
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "multithreaded_cpu")
    print()
    print(table.render())

    cycles_col = table.headers.index("Cycles")
    nsf_row, seg_row = table.rows
    # The headline: identical programs, same answers, and the NSF
    # processor finishes the thread mix in far fewer cycles.
    assert nsf_row[cycles_col] < seg_row[cycles_col]
