"""Resilience: fault-injection campaign shape and ECC overhead pricing."""

from conftest import run_table

from repro.core import NSF_COSTS, NamedStateRegisterFile, ProtectedRegisterFile
from repro.workloads import get_workload


def test_resilience_campaign(benchmark, record_table):
    table = run_table(benchmark, "resilience")
    record_table(table, "resilience")
    print()
    print(table.render())

    level = table.headers.index("Protection")
    injected = table.headers.index("Injected")
    silent = table.headers.index("Silent")
    ecc_rows = [row for row in table.rows if row[level] == "ecc"]
    off_rows = [row for row in table.rows if row[level] == "off"]

    # The campaign injected in every cell and the table covers both
    # protection levels symmetrically.
    assert ecc_rows and len(ecc_rows) == len(off_rows)
    assert all(row[injected] > 0 for row in table.rows)

    # The headline contract: protection leaves nothing silent, while
    # the same faults corrupt silently without it.
    assert sum(row[silent] for row in ecc_rows) == 0
    assert sum(row[silent] for row in off_rows) > 0

    # Every rung of the recovery ladder fires somewhere in the sweep.
    for rung in ("Corrected", "Reread", "Reloaded", "Trapped", "Retired"):
        column = table.headers.index(rung)
        assert sum(row[column] for row in ecc_rows) > 0, rung


def _protected_run(workload_name, num_registers, context_size):
    inner = NamedStateRegisterFile(num_registers=num_registers,
                                   context_size=context_size, line_size=4)
    model = ProtectedRegisterFile(inner)
    get_workload(workload_name).run(model, scale=0.4, seed=1)
    return inner.stats, model.rstats


def test_ecc_overhead_pricing(benchmark):
    """Clean-run ECC overhead on one sequential + one parallel workload."""

    def run_both():
        return {
            "GateSim": _protected_run("GateSim", 64, 20),
            "Quicksort": _protected_run("Quicksort", 128, 32),
        }

    runs = benchmark.pedantic(run_both, iterations=1, rounds=1)
    # A checked-but-fault-free run prices ECC checks and nothing else,
    # and the recovery rungs are strictly ordered trap > reload > correct.
    assert (NSF_COSTS.machine_check_cycles
            > NSF_COSTS.recovery_reload_cycles
            > NSF_COSTS.correction_cycles)
    import dataclasses
    priced = dataclasses.replace(NSF_COSTS, ecc_check_cycles=0.25)
    for name, (stats, rstats) in runs.items():
        assert rstats.checks > 0, name
        assert rstats.detected == 0, name
        events = priced.resilience_event_costs(rstats)
        assert events["ecc_checks"] == rstats.checks * 0.25
        assert all(events[k] == 0 for k in events if k != "ecc_checks")
        # Free checks add nothing; priced checks raise the Fig-14 axis.
        assert NSF_COSTS.overhead_fraction(stats, rstats) == \
            NSF_COSTS.overhead_fraction(stats)
        assert priced.overhead_fraction(stats, rstats) > \
            priced.overhead_fraction(stats)
