"""Ablation: remote-access latency sensitivity (§2 of the paper).

The motivation for fast context switching is masking communication
latency.  This sweep runs Gamteb at increasing remote round-trip
latencies and measures how much processor time multithreading recovers
(idle cycles that remain) and what it costs each register file in
spill/reload traffic.
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.workloads import get_workload

SCALE = 0.4
LATENCIES = (25, 100, 400)


def _run(model_cls, latency):
    workload = get_workload("Gamteb")
    model = model_cls(num_registers=128, context_size=32)
    result = workload.run(model, scale=SCALE, seed=1,
                          remote_latency=latency)
    machine = result.machine
    total_time = machine.cycles or 1
    return model.stats, machine.idle_cycles / total_time


def test_latency_sensitivity(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Ablation F",
            title="Remote latency sensitivity (Gamteb, 128 registers)",
            headers=["Latency", "Idle %", "NSF reloads/instr %",
                     "Segment reloads/instr %"],
        )
        for latency in LATENCIES:
            nsf_stats, idle = _run(NamedStateRegisterFile, latency)
            seg_stats, _ = _run(SegmentedRegisterFile, latency)
            table.add_row(
                latency,
                round(100 * idle, 1),
                round(100 * nsf_stats.reloads_per_instruction, 3),
                round(100 * seg_stats.reloads_per_instruction, 3),
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "ablation_latency")
    print()
    print(table.render())

    idle = table.column("Idle %")
    nsf = table.column("NSF reloads/instr %")
    seg = table.column("Segment reloads/instr %")
    # Longer latencies leave more unmaskable idle time (finite thread
    # pool), and the NSF's traffic advantage holds at every latency.
    assert idle[-1] >= idle[0]
    for nsf_rate, seg_rate in zip(nsf, seg):
        assert nsf_rate < seg_rate
