"""Hot-path benchmark and perf-regression gate for the access fast path.

Two measurements, both comparing the allocation-free fast path against
the legacy tracked path (``fast_path=False``) *on the same machine in
the same process*:

* ``micro``   — resident-hit read/write loops on the NSF (line sizes 1
  and 4) and the segmented file: the workload every simulated
  instruction pays for.
* ``table1``  — an end-to-end Table-1-style sweep: every workload run
  through the paper's default NSF.

Because both sides of each ratio run on the same box, the recorded
speedups are machine-independent and safe to gate on in CI.  Absolute
ops/sec numbers are recorded for human eyes only and never gated.

Usage::

    python benchmarks/bench_hot_path.py                  # print a report
    python benchmarks/bench_hot_path.py --write-baseline # refresh baseline
    python benchmarks/bench_hot_path.py --check          # CI gate

The gate passes when every measured speedup is at least its baseline
value divided by ``--tolerance`` (default 1.5x — generous on purpose:
this catches "someone reintroduced per-hit allocation", not noise).
"""

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.evalx.common import make_nsf
from repro.workloads import ALL_WORKLOADS, get_workload

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

MICRO_OPS = 4000
MICRO_REPEATS = 5
TABLE1_SCALE = 0.2
TABLE1_SEED = 1
TOLERANCE = 1.5


def _best_times(fns, repeats):
    """Minimum wall time per function over ``repeats`` interleaved runs.

    Interleaving (fast, legacy, fast, legacy, ...) instead of timing
    each side in a block keeps slow drift in background load from
    landing entirely on one side of the ratio.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _resident_model(model_cls, fast_path, **kwargs):
    model = model_cls(num_registers=128, context_size=32,
                      fast_path=fast_path, **kwargs)
    cid = model.begin_context()
    model.switch_to(cid)
    for i in range(8):
        model.write(i, i, cid=cid)
    return model, cid


def _hit_loop(model, cid, n=MICRO_OPS):
    write = model.write
    read = model.read
    for i in range(n):
        write(i % 8, i, cid=cid)
        read(i % 8, cid=cid)


MICRO_CASES = [
    ("nsf-line1", NamedStateRegisterFile, {"line_size": 1}),
    ("nsf-line4", NamedStateRegisterFile, {"line_size": 4}),
    ("segmented", SegmentedRegisterFile, {}),
]


def run_micro():
    results = {}
    for name, model_cls, kwargs in MICRO_CASES:
        loops = []
        models = []
        for fast in (True, False):
            model, cid = _resident_model(model_cls, fast, **kwargs)
            loops.append(lambda m=model, c=cid: _hit_loop(m, c))
            models.append(model)
        fast_t, legacy_t = _best_times(loops, MICRO_REPEATS)
        for model in models:
            if model.stats.read_misses:
                raise RuntimeError(f"{name}: hit loop missed")
        ops = 2 * MICRO_OPS
        results[name] = {
            "fast_ops_per_sec": round(ops / fast_t),
            "legacy_ops_per_sec": round(ops / legacy_t),
            "speedup": round(legacy_t / fast_t, 3),
        }
    return results


def _table1_pass(fast_path, scale, seed):
    for workload_cls in ALL_WORKLOADS:
        workload = get_workload(workload_cls.name)
        nsf = make_nsf(workload, fast_path=fast_path)
        workload.run(nsf, scale=scale, seed=seed)


def run_table1(scale=TABLE1_SCALE, seed=TABLE1_SEED, repeats=5):
    fast_t, legacy_t = _best_times(
        [lambda: _table1_pass(True, scale, seed),
         lambda: _table1_pass(False, scale, seed)], repeats)
    return {
        "scale": scale,
        "fast_seconds": round(fast_t, 4),
        "legacy_seconds": round(legacy_t, 4),
        "speedup": round(legacy_t / fast_t, 3),
    }


def measure():
    return {"micro": run_micro(), "table1": run_table1()}


def report(results, stream=sys.stdout):
    for name, row in results["micro"].items():
        stream.write(
            f"micro/{name}: {row['fast_ops_per_sec']:,} ops/s fast vs "
            f"{row['legacy_ops_per_sec']:,} legacy "
            f"({row['speedup']:.2f}x)\n")
    t1 = results["table1"]
    stream.write(
        f"table1 sweep (scale={t1['scale']}): {t1['fast_seconds']}s fast "
        f"vs {t1['legacy_seconds']}s legacy ({t1['speedup']:.2f}x)\n")


def check(results, baseline, tolerance=TOLERANCE, stream=sys.stdout):
    """True when every speedup is within ``tolerance`` of its baseline."""
    ok = True
    for name, base_row in baseline["micro"].items():
        floor = base_row["speedup"] / tolerance
        got = results["micro"][name]["speedup"]
        verdict = "ok" if got >= floor else "REGRESSION"
        ok = ok and got >= floor
        stream.write(f"check micro/{name}: {got:.2f}x "
                     f"(baseline {base_row['speedup']:.2f}x, floor "
                     f"{floor:.2f}x) {verdict}\n")
    floor = baseline["table1"]["speedup"] / tolerance
    got = results["table1"]["speedup"]
    verdict = "ok" if got >= floor else "REGRESSION"
    ok = ok and got >= floor
    stream.write(f"check table1: {got:.2f}x (baseline "
                 f"{baseline['table1']['speedup']:.2f}x, floor "
                 f"{floor:.2f}x) {verdict}\n")
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the access fast path vs the legacy "
                    "tracked path and gate against BENCH_baseline.json.")
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and overwrite BENCH_baseline.json")
    parser.add_argument("--check", action="store_true",
                        help="measure and fail on speedup regression")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed baseline/measured speedup ratio")
    args = parser.parse_args(argv)

    results = measure()
    report(results)

    if args.write_baseline:
        BASELINE_PATH.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print("no BENCH_baseline.json; run --write-baseline first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        if not check(results, baseline, tolerance=args.tolerance):
            print("perf regression vs BENCH_baseline.json",
                  file=sys.stderr)
            return 1
        print("bench-check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
