"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures, records the
rendered table under ``benchmarks/results/`` and asserts the paper's
qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

from repro.ioutil import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: workload scale used by the simulation benches (1.0 = harness default)
BENCH_SCALE = 0.7
BENCH_SEED = 1


@pytest.fixture
def record_table():
    """Write a rendered ExperimentTable under benchmarks/results/."""

    def _record(table, name):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        atomic_write_text(path, table.render() + "\n")
        return path

    return _record


def run_table(benchmark, experiment, scale=BENCH_SCALE, seed=BENCH_SEED):
    """Benchmark one experiment run and return its table."""
    from repro.evalx import run_experiment

    return benchmark.pedantic(
        run_experiment,
        args=(experiment,),
        kwargs={"scale": scale, "seed": seed},
        iterations=1,
        rounds=1,
    )
