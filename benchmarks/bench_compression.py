"""Compression: spill-path codec sweep shape and traffic reduction."""

from conftest import run_table

from repro.evalx.compression import assert_compression_contract


def test_compression_sweep(benchmark, record_table):
    table = run_table(benchmark, "compression")
    record_table(table, "compression")
    print()
    print(table.render())

    assert_compression_contract(table)

    model = table.headers.index("Model")
    codec = table.headers.index("Codec")
    raw_b = table.headers.index("Raw spill B")
    wire_b = table.headers.index("Wire spill B")
    workload = table.headers.index("Workload")

    def ratio(rows):
        raw = sum(r[raw_b] for r in rows)
        wire = sum(r[wire_b] for r in rows)
        return raw / wire if wire else 1.0

    for wl in {r[workload] for r in table.rows}:
        rows = [r for r in table.rows if r[workload] == wl]

        # Whole-frame spills ship dead slots, so zero-elision strips
        # strictly more from seg-frame than from seg-live traffic.
        zero_frame = ratio([r for r in rows if r[model] == "seg-frame"
                            and r[codec] == "zero"])
        zero_live = ratio([r for r in rows if r[model] == "seg-live"
                           and r[codec] == "zero"])
        assert zero_frame > zero_live, wl

        # Narrow-value packing is the workhorse: it wins on every
        # granularity, including one-register NSF lines.
        for m in {r[model] for r in rows}:
            narrow = [r for r in rows
                      if r[model] == m and r[codec] == "narrow"]
            assert ratio(narrow) > 1.0, (wl, m)
