"""Figure 10: registers reloaded as a percentage of instructions."""

from conftest import run_table


def test_fig10_reload_traffic(benchmark, record_table):
    table = run_table(benchmark, "fig10")
    record_table(table, "fig10")
    print()
    print(table.render())

    nsf = table.headers.index("NSF %")
    seg = table.headers.index("Segment %")
    live = table.headers.index("Segment live %")
    for row in table.rows:
        assert row[nsf] <= row[seg]
        assert row[live] <= row[seg]

    # Paper: sequential gap of 1,000-10,000x (ours is often infinite —
    # the NSF holds the whole call chain); parallel gap 10-40x.
    for row in table.rows:
        if row[1] == "Sequential":
            assert row[nsf] == 0 or row[seg] / row[nsf] > 100
    par_ratios = [
        row[seg] / row[nsf]
        for row in table.rows
        if row[1] == "Parallel" and row[nsf] > 0
    ]
    assert par_ratios and max(par_ratios) >= 5

    # Even live-only segmented reloads exceed the NSF (paper: 6-7x).
    for row in table.rows:
        assert row[live] >= row[nsf] or row[seg] == 0
