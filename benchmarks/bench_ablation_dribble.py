"""Ablation: dribble-back background spilling (related work [29]).

Sweeps the NSF's spill watermark on the fine-grained Gamteb workload
and prices the result: foreground spill traffic migrates into hidden
background work, shrinking the critical-path overhead — at the cost of
extra total data movement (speculative spills of lines that get touched
again).
"""

from repro.core import NSF_COSTS, NamedStateRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.workloads import get_workload

SCALE = 0.5
WATERMARKS = (0, 2, 4, 8, 16)


def test_dribble_back_sweep(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Ablation C",
            title="Dribble-back spill watermark (Gamteb, 128 registers)",
            headers=["Watermark", "Foreground spills/instr %",
                     "Background spills/instr %", "Reloads/instr %",
                     "Critical-path overhead %"],
        )
        workload = get_workload("Gamteb")
        for watermark in WATERMARKS:
            nsf = NamedStateRegisterFile(num_registers=128,
                                         context_size=32,
                                         spill_watermark=watermark)
            workload.run(nsf, scale=SCALE, seed=1)
            stats = nsf.stats
            instructions = stats.instructions
            table.add_row(
                watermark,
                round(100 * stats.registers_spilled / instructions, 3),
                round(100 * stats.background_registers_spilled
                      / instructions, 3),
                round(100 * stats.reloads_per_instruction, 3),
                round(100 * NSF_COSTS.overhead_fraction(stats), 2),
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "ablation_dribble")
    print()
    print(table.render())

    foreground = table.column("Foreground spills/instr %")
    background = table.column("Background spills/instr %")
    # Watermark 0 does no background work; larger watermarks shift the
    # spill traffic off the critical path.
    assert background[0] == 0
    assert background[-1] > 0
    assert foreground[-1] < foreground[0]
    # Every configuration still produced the verified result (workload
    # raises otherwise), so the feature is functionally sound.
