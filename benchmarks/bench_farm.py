"""Farm overhead gate: crash-tolerance must be cheap when nothing fails.

PR 8 adds the fault-tolerant sweep farm — a durable work queue, lease
files, worker processes and a supervising daemon — as an alternative
scheduler behind ``run_sweep(..., farm=True)``.  All of that machinery
(worker interpreter startup, lease heartbeats, claim/commit journal
records, the supervisor's observation loop) must stay a small constant
against the sweep it carries: this benchmark runs the same compression
sweep through the direct ``--jobs N`` scheduler and through the farm
at **matched concurrency** (N = core count for both, so the comparison
measures the service machinery, not CPU contention between extra
interpreters) and gates the farm at **<= 10% overhead**.

The measurement is min-of-N interleaved on fresh state directories; a
failing gate re-measures once before failing, so a single background
load spike cannot flake CI.  Results live under the ``farm`` key of
BENCH_baseline.json; ``--write-baseline`` merges the key.

Usage::

    python benchmarks/bench_farm.py                  # report
    python benchmarks/bench_farm.py --check          # CI gate
    python benchmarks/bench_farm.py --write-baseline # refresh baseline
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evalx import runner as runner_mod
from repro.farm import run_farm_sweep

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"
BASELINE_KEY = "farm"

EXPERIMENT = "compression"
SCALE = 0.5
SEED = 7
REPEATS = 2

#: the gate: farm sweep vs direct sweep at matched concurrency
MAX_OVERHEAD_PCT = 10.0


def measure():
    jobs = runner_mod.resolve_jobs(
        None, len(runner_mod.sweep_cells(EXPERIMENT)))
    with tempfile.TemporaryDirectory(prefix="farm-bench-") as tmp:
        tmp = Path(tmp)
        direct_best = farm_best = float("inf")
        serial = 0
        for _ in range(REPEATS):
            serial += 1
            start = time.perf_counter()
            result = runner_mod.run_sweep(
                EXPERIMENT, scale=SCALE, seed=SEED,
                journal_path=tmp / f"direct-{serial}.jsonl",
                out_path=tmp / f"direct-{serial}.json", jobs=jobs)
            direct_best = min(direct_best,
                              time.perf_counter() - start)
            assert result.ok, "direct sweep dropped cells"
            direct_bytes = (tmp / f"direct-{serial}.json").read_bytes()

            start = time.perf_counter()
            result = run_farm_sweep(
                EXPERIMENT, scale=SCALE, seed=SEED,
                state_dir=tmp / f"farm-{serial}",
                out_path=tmp / f"farm-{serial}.json", workers=jobs,
                lease_ttl=2.0)
            farm_best = min(farm_best, time.perf_counter() - start)
            assert result.ok, "farm sweep dropped cells"
            farm_bytes = (tmp / f"farm-{serial}.json").read_bytes()
            assert farm_bytes == direct_bytes, \
                "farm output diverged from the direct scheduler"
    return {
        "experiment": EXPERIMENT,
        "scale": SCALE,
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "direct_seconds": round(direct_best, 4),
        "farm_seconds": round(farm_best, 4),
        "overhead_pct": round((farm_best / direct_best - 1.0) * 100,
                              2),
    }


def report(results, stream=sys.stdout):
    stream.write(
        f"farm overhead ({results['experiment']}, "
        f"scale={results['scale']}, jobs={results['jobs']}): "
        f"direct {results['direct_seconds']:.3f} s, "
        f"farm {results['farm_seconds']:.3f} s "
        f"({results['overhead_pct']:+.2f}%)\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate the sweep farm's overhead against the "
                    "direct --jobs scheduler.")
    parser.add_argument("--check", action="store_true",
                        help="fail if farm overhead exceeds "
                             f"{MAX_OVERHEAD_PCT}%")
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and refresh the farm key of "
                             "BENCH_baseline.json")
    args = parser.parse_args(argv)

    results = measure()
    report(results)
    if args.write_baseline:
        merged = (json.loads(BASELINE_PATH.read_text())
                  if BASELINE_PATH.exists() else {})
        merged[BASELINE_KEY] = results
        BASELINE_PATH.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"baseline key {BASELINE_KEY!r} written to "
              f"{BASELINE_PATH}")
        return 0
    if not args.check:
        return 0
    if results["overhead_pct"] > MAX_OVERHEAD_PCT:
        # one re-measure damps background-load flake before failing
        results = measure()
        report(results)
    if results["overhead_pct"] > MAX_OVERHEAD_PCT:
        print(f"farm overhead gate FAILED: "
              f"{results['overhead_pct']:+.2f}% > {MAX_OVERHEAD_PCT}%",
              file=sys.stderr)
        return 1
    print(f"farm overhead gate ok: {results['overhead_pct']:+.2f}% "
          f"<= {MAX_OVERHEAD_PCT}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
