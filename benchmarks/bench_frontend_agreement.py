"""Extension: both front-ends agree on the NSF's advantage.

Runs a sequential workload through the activation-trace machine
(GateSim) and through real compiled code on the cycle-level CPU
(CompiledSuite), on the same pair of register files.  If the
NSF-vs-segmented ratios agree in direction across two *independent*
reference-stream generators, the measured effect belongs to the
register files, not the driver.
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.workloads import CompiledSuite, get_workload

SCALE = 0.6


def _measure(workload):
    nsf = NamedStateRegisterFile(num_registers=80, context_size=20)
    seg = SegmentedRegisterFile(num_registers=80, context_size=20)
    workload.run(nsf, scale=SCALE, seed=1)
    workload.run(seg, scale=SCALE, seed=1)
    return nsf.stats, seg.stats


def test_frontend_agreement(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Extension B",
            title="Activation-trace vs compiled-code front-ends",
            headers=["Front-end", "Workload", "NSF reloads/instr %",
                     "Segment reloads/instr %", "NSF util %",
                     "Segment util %"],
        )
        cases = [
            ("activation", get_workload("GateSim")),
            ("compiled CPU", CompiledSuite()),
        ]
        for label, workload in cases:
            nsf, seg = _measure(workload)
            table.add_row(
                label,
                workload.name,
                round(100 * nsf.reloads_per_instruction, 4),
                round(100 * seg.reloads_per_instruction, 4),
                round(100 * nsf.utilization_avg, 1),
                round(100 * seg.utilization_avg, 1),
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "frontend_agreement")
    print()
    print(table.render())

    nsf_rel = table.headers.index("NSF reloads/instr %")
    seg_rel = table.headers.index("Segment reloads/instr %")
    nsf_util = table.headers.index("NSF util %")
    seg_util = table.headers.index("Segment util %")
    for row in table.rows:
        assert row[nsf_rel] < row[seg_rel]
        assert row[nsf_util] >= row[seg_util]
