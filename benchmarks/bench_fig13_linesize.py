"""Figure 13: reload traffic vs NSF line size and miss strategy."""

from conftest import run_table


def test_fig13_line_size(benchmark, record_table):
    table = run_table(benchmark, "fig13")
    record_table(table, "fig13")
    print()
    print(table.render())

    full = table.headers.index("Reload %")
    live = table.headers.index("Live reload %")
    active = table.headers.index("Active reload %")
    for row in table.rows:
        # Strategy ordering: an oracle (active) never moves more than a
        # valid-bit scheme (live), which never moves more than a whole
        # line.
        assert row[active] <= row[live] + 1e-9
        if row[1] > 1:
            assert row[full] >= row[live] - 1e-9

    # Single-register lines are the best configuration the paper finds
    # (§7.3), for both program classes.
    for kind in ("Sequential", "Parallel"):
        series = [r for r in table.rows if r[0] == kind]
        reloads = [r[full] for r in series]
        assert reloads[0] == min(reloads)
        # Traffic grows toward segmented-file behaviour at line sizes
        # approaching the context size.
        assert reloads[-1] >= reloads[0]
