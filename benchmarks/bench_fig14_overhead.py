"""Figure 14: spill/reload overhead as a fraction of execution time."""

from conftest import run_table


def test_fig14_overhead(benchmark, record_table):
    table = run_table(benchmark, "fig14")
    record_table(table, "fig14")
    print()
    print(table.render())

    nsf = table.headers.index("NSF %")
    hw = table.headers.index("Segment HW %")
    sw = table.headers.index("Segment SW %")
    for row in table.rows:
        # Paper ordering: NSF < hardware-assisted < software traps.
        assert row[nsf] < row[hw] < row[sw]
        # The NSF ends up faster either way (§8 / conclusions).
        assert row[table.headers.index("NSF speedup vs HW %")] > 0
        assert row[table.headers.index("NSF speedup vs SW %")] > 0

    # Paper: the NSF "completely eliminates" serial spill overhead.
    assert table.lookup("Serial", "NSF %") < 1.0
    # Parallel NSF overhead lands in the paper's ballpark (12.1%).
    parallel_nsf = table.lookup("Parallel", "NSF %")
    assert 2.0 <= parallel_nsf <= 25.0
