"""Microbenchmarks of raw register-file model operations.

These time the *simulator itself* (operations per second of the Python
models), not the modeled hardware — useful for tracking regressions in
the hot paths every experiment depends on.
"""

import pytest

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile


def _hit_loop(model, cid, n=2000):
    for i in range(n):
        model.write(i % 8, i, cid=cid)
        model.read(i % 8, cid=cid)


@pytest.mark.parametrize("model_cls,kwargs", [
    (NamedStateRegisterFile, {"line_size": 1}),
    (NamedStateRegisterFile, {"line_size": 4}),
    (SegmentedRegisterFile, {}),
], ids=["nsf-line1", "nsf-line4", "segmented"])
def test_hit_path_throughput(benchmark, model_cls, kwargs):
    model = model_cls(num_registers=128, context_size=32, **kwargs)
    cid = model.begin_context()
    model.switch_to(cid)
    model.write(0, 0)
    benchmark(_hit_loop, model, cid)
    assert model.stats.read_misses == 0


def test_miss_path_throughput(benchmark):
    # Two contexts fighting over a tiny file: every access migrates a
    # register.
    model = NamedStateRegisterFile(num_registers=4, context_size=8)
    a = model.begin_context()
    b = model.begin_context()
    for i in range(8):
        model.write(i % 8, i, cid=a)
        model.write(i % 8, i, cid=b)

    def thrash():
        for i in range(500):
            model.read(i % 8, cid=a)
            model.read(i % 8, cid=b)

    benchmark(thrash)
    assert model.stats.registers_reloaded > 0


def test_context_switch_throughput(benchmark):
    model = SegmentedRegisterFile(num_registers=64, context_size=16)
    cids = [model.begin_context() for _ in range(8)]
    for cid in cids:
        model.switch_to(cid)
        for i in range(8):
            model.write(i, i)

    def spin():
        for i in range(400):
            model.switch_to(cids[i % len(cids)])

    benchmark(spin)
    assert model.stats.switch_misses > 0
