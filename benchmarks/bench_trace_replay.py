"""Record-once / replay-many engine benchmark and regression gate.

Three measurements, each a same-box ratio (machine-independent, safe to
gate in CI):

* ``record`` — the cost of recording: a workload run through
  :class:`TracingRegisterFile` vs run directly on the wrapped model.
  The per-run overhead is baseline-gated; the amortized cost (the
  engine records once per sweep) carries an absolute <15% ceiling.
* ``replay`` — one warm cache cell: deserialize the stored trace and
  drive a model.  Packed binary + int-opcode fast dispatch
  (``verify=False``, what cached sweeps execute) vs the pipeline this
  PR replaced — text parsing into per-event tuples and the verifying
  tuple loop — replicated below verbatim.  Gated >= 2x.  The
  in-memory loops are also compared on their own (``loop_speedup``);
  there the model's read/write cost sits on both sides, so the ratio
  is structurally modest and only baseline-gated.
* ``sweep``  — end-to-end: a multi-cell line-size sweep executed
  directly (every cell re-runs the workload front-end) vs through a
  warm trace cache (record once, replay per cell).  Measured on two
  front-ends:

  - ``compiled`` — the cycle-level CPU interpreter (mini-C kernels via
    :class:`CompiledSuite`), where front-end cost dominates and the
    cache shines; this ratio is gated (>= 2x).
  - ``gatesim``  — an activation-machine workload, where the
    register-file model itself dominates both sides of the ratio, so
    the structural ceiling is ~2x and the measured gain is smaller.
    Reported and baseline-gated, but with no absolute floor.

Cold-cache sweep times (record + publish + replay) are reported for
human eyes and never gated.

Usage::

    python benchmarks/bench_trace_replay.py                  # report
    python benchmarks/bench_trace_replay.py --write-baseline # refresh
    python benchmarks/bench_trace_replay.py --check          # CI gate

Results live under the ``trace_replay`` key of BENCH_baseline.json,
next to the hot-path entries; ``--write-baseline`` merges the key and
leaves the others untouched.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evalx.common import make_nsf, run_workload
from repro.trace import Trace, TracingRegisterFile, replay
from repro.trace import cache as trace_cache
from repro.workloads import get_workload
from repro.workloads.compiled import CompiledSuite

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"
BASELINE_KEY = "trace_replay"

SCALE = 0.35
SEED = 11
REPEATS = 5
LINE_SIZES = (1, 2, 4, 5, 10, 20)
TOLERANCE = 1.5

#: hard floors independent of the recorded baseline.  The committed
#: results demonstrate >= 2x for the warm replay cell; its CI floor
#: sits at 1.8x so a noisy box doesn't flake the gate (the compiled
#: sweep, with ~80% headroom, keeps an absolute 2x floor).
MAX_RECORD_OVERHEAD_PCT = 15.0
MIN_REPLAY_SPEEDUP = 1.8
MIN_SWEEP_SPEEDUP = 2.0


def _best_times(fns, repeats=REPEATS):
    """Minimum wall time per function over ``repeats`` interleaved runs
    (interleaved so background-load drift lands on both sides)."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


# -- legacy trace pipeline (pre-packed), replicated for comparison -----------


_LEGACY_OPS = frozenset("BESRWFT")


def _legacy_loads(text):
    """The text deserializer this PR replaced, line for line: validate
    each event and build one ``(str_op, cid, offset, value)`` tuple
    per line — the tuple list that was the old ``Trace`` storage."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("# nsf-trace v1"):
        raise RuntimeError("missing trace header")
    events = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4 or parts[0] not in _LEGACY_OPS:
            raise RuntimeError(f"line {lineno}: bad event {line!r}")
        try:
            events.append((parts[0], int(parts[1]), int(parts[2]),
                           int(parts[3])))
        except ValueError:
            raise RuntimeError(
                f"line {lineno}: non-integer field in {line!r}") from None
    return events


def _legacy_replay(events, model):
    """The replay loop this PR replaced: per-event tuples, string-op
    dispatch, and the always-on verifying shadow store with its
    O(live-registers) END scan.  Kept here, not in the library, so the
    benchmark keeps comparing against what sweeps actually used to pay
    per cell.
    """
    shadow = {}
    for op, cid, offset, value in events:
        if op == "T":
            model.tick(value)
        elif op == "W":
            model.write(offset, value, cid=cid)
            shadow[(cid, offset)] = value
        elif op == "R":
            got, _ = model.read(offset, cid=cid)
            expected = shadow.get((cid, offset))
            if expected is not None and got != expected:
                raise RuntimeError(
                    f"legacy replay diverged: context {cid} r{offset}")
        elif op == "S":
            model.switch_to(cid)
        elif op == "B":
            model.begin_context(cid=cid)
        elif op == "E":
            model.end_context(cid)
            for key in [k for k in shadow if k[0] == cid]:
                del shadow[key]
        elif op == "F":
            model.free_register(offset, cid=cid)
            shadow.pop((cid, offset), None)
    return model


# -- measurements ------------------------------------------------------------


def run_record(workload_name="GateSim"):
    """Recording overhead: traced run vs direct run of the same model.

    ``overhead_pct`` is the raw single-run cost of the wrapper
    (baseline-gated so the recorder can't quietly regrow per-event
    work).  The engine records *once per sweep*, so what a user
    actually pays is ``amortized_pct`` — the recording surcharge
    spread over the sweep's cells — and that is what carries the
    absolute <15%-of-direct-execution ceiling.
    """
    workload = get_workload(workload_name)

    def direct():
        workload.run(make_nsf(workload), scale=SCALE, seed=SEED)

    def traced():
        workload.run(TracingRegisterFile(make_nsf(workload)),
                     scale=SCALE, seed=SEED)

    direct_t, traced_t = _best_times([direct, traced])
    overhead = (traced_t / direct_t - 1.0) * 100
    return {
        "workload": workload_name,
        "direct_ms": round(direct_t * 1e3, 3),
        "traced_ms": round(traced_t * 1e3, 3),
        "overhead_pct": round(overhead, 1),
        "sweep_cells": len(LINE_SIZES),
        "amortized_pct": round(overhead / len(LINE_SIZES), 1),
    }


def run_replay(workload_name="GateSim"):
    """Replaying one cached sweep cell: packed pipeline vs legacy.

    The unit under test is what a warm cache hit costs per cell —
    deserialize the stored trace, then drive the model:

    * packed — binary load (``frombytes`` into the int64 array) plus
      the int-opcode fast-dispatch loop, ``verify=False``;
    * legacy — what the pre-packed engine offered: parse the text
      format into per-event tuples, then the verifying tuple loop.

    ``loop_speedup`` isolates the in-memory replay loops on the same
    model (no deserialization); the model's own read/write cost sits
    on both sides of that ratio, so it is reported and
    baseline-gated but has no absolute floor.
    """
    workload = get_workload(workload_name)
    tracer = TracingRegisterFile(make_nsf(workload))
    workload.run(tracer, scale=SCALE, seed=SEED)
    trace = tracer.trace
    events = trace.events

    with tempfile.TemporaryDirectory(prefix="nsf-bench-trace-") as tmp:
        binary_path = Path(tmp) / "cell.nsft"
        text_path = Path(tmp) / "cell.trace"
        trace.dump(binary_path, binary=True)
        trace.dump(text_path)

        def packed_cell():
            replay(Trace.load(binary_path), make_nsf(workload),
                   verify=False)

        def legacy_cell():
            _legacy_replay(_legacy_loads(text_path.read_text()),
                           make_nsf(workload))

        packed_t, legacy_t = _best_times([packed_cell, legacy_cell])
        loop_packed_t, loop_legacy_t = _best_times([
            lambda: replay(trace, make_nsf(workload), verify=False),
            lambda: _legacy_replay(events, make_nsf(workload)),
        ])
    n = len(trace)
    return {
        "workload": workload_name,
        "events": n,
        "packed_events_per_sec": round(n / packed_t),
        "legacy_events_per_sec": round(n / legacy_t),
        "speedup": round(legacy_t / packed_t, 3),
        "loop_speedup": round(loop_legacy_t / loop_packed_t, 3),
    }


def _get_workload(name):
    # CompiledSuite is a benchmark front-end, not one of the paper's
    # nine workloads, so it is not in the registry
    return CompiledSuite() if name == "CompiledSuite" else get_workload(name)


def _sweep_case(workload_name):
    """Direct vs warm-cache line-size sweep for one front-end."""
    workload = _get_workload(workload_name)

    def direct_pass():
        for line_size in LINE_SIZES:
            workload.run(make_nsf(workload, line_size=line_size),
                         scale=SCALE, seed=SEED)

    def cached_pass():
        for line_size in LINE_SIZES:
            run_workload(workload, make_nsf(workload, line_size=line_size),
                         scale=SCALE, seed=SEED)

    # cold pass: empty cache, one cell records + publishes, the rest replay
    trace_cache.clear()
    trace_cache._memo.clear()
    start = time.perf_counter()
    cached_pass()
    cold_t = time.perf_counter() - start

    direct_t, warm_t = _best_times([direct_pass, cached_pass])
    return {
        "workload": workload_name,
        "cells": len(LINE_SIZES),
        "direct_seconds": round(direct_t, 4),
        "cold_seconds": round(cold_t, 4),
        "warm_seconds": round(warm_t, 4),
        "speedup": round(direct_t / warm_t, 3),
    }


def run_sweeps():
    return {
        "compiled": _sweep_case("CompiledSuite"),
        "gatesim": _sweep_case("GateSim"),
    }


def measure():
    """All measurements, against a private throwaway cache directory."""
    saved_dir = os.environ.get(trace_cache.ENV_DIR)
    saved_disable = os.environ.pop(trace_cache.ENV_DISABLE, None)
    with tempfile.TemporaryDirectory(prefix="nsf-bench-cache-") as tmp:
        os.environ[trace_cache.ENV_DIR] = tmp
        trace_cache._memo.clear()
        try:
            return {
                "record": run_record(),
                "replay": run_replay(),
                "sweep": run_sweeps(),
            }
        finally:
            trace_cache._memo.clear()
            if saved_dir is None:
                os.environ.pop(trace_cache.ENV_DIR, None)
            else:
                os.environ[trace_cache.ENV_DIR] = saved_dir
            if saved_disable is not None:
                os.environ[trace_cache.ENV_DISABLE] = saved_disable


def report(results, stream=sys.stdout):
    rec = results["record"]
    stream.write(
        f"record/{rec['workload']}: {rec['traced_ms']}ms traced vs "
        f"{rec['direct_ms']}ms direct ({rec['overhead_pct']:+.1f}% per "
        f"run; {rec['amortized_pct']:+.1f}% amortized over a "
        f"{rec['sweep_cells']}-cell sweep that records once)\n")
    rep = results["replay"]
    stream.write(
        f"replay/{rep['workload']}: warm cell (load + replay) "
        f"{rep['packed_events_per_sec']:,} events/s packed-binary vs "
        f"{rep['legacy_events_per_sec']:,} legacy text+tuples over "
        f"{rep['events']:,} events ({rep['speedup']:.2f}x; in-memory "
        f"loops alone {rep['loop_speedup']:.2f}x)\n")
    for name, row in results["sweep"].items():
        stream.write(
            f"sweep/{name}: {row['cells']}-cell line-size sweep "
            f"{row['direct_seconds']}s direct vs {row['warm_seconds']}s "
            f"warm cache ({row['speedup']:.2f}x; cold "
            f"{row['cold_seconds']}s)\n")


def check(results, baseline, tolerance=TOLERANCE, stream=sys.stdout):
    """True when overhead and speedups hold their floors.

    Speedup floors are ``max(hard_floor, baseline / tolerance)``; the
    recording-overhead ceiling is ``max(hard_ceiling, baseline *
    tolerance)`` so a near-zero recorded baseline does not turn noise
    into a failure.
    """
    ok = True

    # raw wrapper cost: relative gate only (catches recorder regrowth)
    ceiling = baseline["record"]["overhead_pct"] * tolerance
    got = results["record"]["overhead_pct"]
    verdict = "ok" if got <= ceiling else "REGRESSION"
    ok = ok and got <= ceiling
    stream.write(f"check record/run: {got:+.1f}% overhead (ceiling "
                 f"{ceiling:.1f}%) {verdict}\n")

    # amortized recording cost: the absolute <15% contract
    ceiling = MAX_RECORD_OVERHEAD_PCT
    got = results["record"]["amortized_pct"]
    verdict = "ok" if got <= ceiling else "REGRESSION"
    ok = ok and got <= ceiling
    stream.write(f"check record/sweep: {got:+.1f}% amortized (ceiling "
                 f"{ceiling:.1f}%) {verdict}\n")

    floor = max(MIN_REPLAY_SPEEDUP,
                baseline["replay"]["speedup"] / tolerance)
    got = results["replay"]["speedup"]
    verdict = "ok" if got >= floor else "REGRESSION"
    ok = ok and got >= floor
    stream.write(f"check replay: {got:.2f}x (baseline "
                 f"{baseline['replay']['speedup']:.2f}x, floor "
                 f"{floor:.2f}x) {verdict}\n")

    floor = baseline["replay"]["loop_speedup"] / tolerance
    got = results["replay"]["loop_speedup"]
    verdict = "ok" if got >= floor else "REGRESSION"
    ok = ok and got >= floor
    stream.write(f"check replay/loop: {got:.2f}x (baseline "
                 f"{baseline['replay']['loop_speedup']:.2f}x, floor "
                 f"{floor:.2f}x) {verdict}\n")

    hard = {"compiled": MIN_SWEEP_SPEEDUP, "gatesim": 0.0}
    for name, base_row in baseline["sweep"].items():
        floor = max(hard.get(name, 0.0), base_row["speedup"] / tolerance)
        got = results["sweep"][name]["speedup"]
        verdict = "ok" if got >= floor else "REGRESSION"
        ok = ok and got >= floor
        stream.write(f"check sweep/{name}: {got:.2f}x (baseline "
                     f"{base_row['speedup']:.2f}x, floor {floor:.2f}x) "
                     f"{verdict}\n")
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the record-once/replay-many sweep engine "
                    "and gate against BENCH_baseline.json.")
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and refresh the trace_replay key "
                             "of BENCH_baseline.json")
    parser.add_argument("--check", action="store_true",
                        help="measure and fail on regression")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed baseline/measured speedup ratio")
    args = parser.parse_args(argv)

    results = measure()
    report(results)

    if args.write_baseline:
        merged = (json.loads(BASELINE_PATH.read_text())
                  if BASELINE_PATH.exists() else {})
        merged[BASELINE_KEY] = results
        BASELINE_PATH.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"baseline key {BASELINE_KEY!r} written to {BASELINE_PATH}")
        return 0
    if args.check:
        baseline = (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else {})
        if BASELINE_KEY not in baseline:
            print(f"no {BASELINE_KEY!r} key in BENCH_baseline.json; "
                  "run --write-baseline first", file=sys.stderr)
            return 2
        if not check(results, baseline[BASELINE_KEY],
                     tolerance=args.tolerance):
            print("perf regression vs BENCH_baseline.json",
                  file=sys.stderr)
            return 1
        print("bench-check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
