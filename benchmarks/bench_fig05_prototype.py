"""Figure 5: model predictions for the fabricated prototype chip."""

from conftest import run_table


def test_fig05_prototype(benchmark, record_table):
    table = run_table(benchmark, "fig05")
    record_table(table, "fig05")
    print()
    print(table.render())

    assert table.lookup("Organization", "Value") == "NSF 32x32"
    # The paper's prototype had a 10-bit fully-associative decoder,
    # two read ports and one write port, in 2um CMOS.
    assert table.lookup("Decoder tag width (bits)", "Value") == 10
    assert table.lookup("Ports (R/W)", "Value") == "2R1W"
    assert table.lookup("Process", "Value") == "2um"
    # The data array dominates even with the CAM overhead.
    darray = table.lookup("  data array share %", "Value")
    assert darray > 40
