"""Extension: executed window traps validate the Fig-14 cost model.

Figure 14's software-trap overhead comes from an analytic cost model.
Here the traps actually *run*: a synthetic handler executes entry/exit
code plus a load or store per moved register through the data cache at
real Ctable addresses.  The measured overhead lands in the same regime
as the analytic estimate — evidence the pricing in ``SEGMENT_SW_COSTS``
is reasonable — and the NSF needs three orders of magnitude fewer
handler instructions on the same program.
"""

from repro.core import (
    SEGMENT_SW_COSTS,
    NamedStateRegisterFile,
    SegmentedRegisterFile,
)
from repro.cpu import CPU
from repro.evalx.tables import ExperimentTable
from repro.lang import compile_source

SOURCE = """
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func sum_to(n) {
    var total = 0;
    var i = 1;
    while (i <= n) { total = total + i; i = i + 1; }
    return total;
}
func main() { return fib(12) + sum_to(50); }
"""


def test_executed_traps(benchmark, record_table):
    def sweep():
        program = compile_source(SOURCE).program
        table = ExperimentTable(
            experiment="Extension C",
            title="Executed window traps vs the analytic cost model",
            headers=["Model", "Program instr", "Trap instr",
                     "Traps", "Measured overhead %",
                     "Analytic (Fig 14) %"],
        )
        for model_cls, label in (
            (SegmentedRegisterFile, "segmented"),
            (NamedStateRegisterFile, "nsf"),
        ):
            regfile = model_cls(num_registers=80, context_size=20,
                                track_moves=True)
            cpu = CPU(program, regfile, software_spill_traps=True)
            result = cpu.run()
            measured = cpu.trap_unit.stats.cycles / result.cycles

            analytic_file = model_cls(num_registers=80, context_size=20)
            CPU(program, analytic_file).run()
            analytic = SEGMENT_SW_COSTS.overhead_fraction(
                analytic_file.stats
            )
            table.add_row(
                label,
                result.instructions - cpu.trap_unit.stats.instructions,
                cpu.trap_unit.stats.instructions,
                cpu.trap_unit.stats.traps,
                round(100 * measured, 1),
                round(100 * analytic, 1),
            )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "software_traps")
    print()
    print(table.render())

    seg_row, nsf_row = table.rows
    trap_instr = table.headers.index("Trap instr")
    measured_col = table.headers.index("Measured overhead %")
    analytic_col = table.headers.index("Analytic (Fig 14) %")
    # The NSF barely traps; the segmented file traps constantly.
    assert nsf_row[trap_instr] < seg_row[trap_instr] / 10
    # Measured and analytic agree within a small factor for segmented.
    assert 0.3 < seg_row[analytic_col] / max(seg_row[measured_col],
                                             1e-9) < 3.0
