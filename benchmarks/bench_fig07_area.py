"""Figure 7: register file area, one write / two read ports."""

from conftest import run_table


def test_fig07_area_three_ports(benchmark, record_table):
    table = run_table(benchmark, "fig07")
    record_table(table, "fig07")
    print()
    print(table.render())

    # Paper: NSF +54% (32b x 128) and +30% (64b x 64).
    ratio_128 = int(table.rows[1][-1].rstrip("%"))
    ratio_64 = int(table.rows[3][-1].rstrip("%"))
    assert 140 <= ratio_128 <= 165
    assert 120 <= ratio_64 <= 140
    # The data array must dominate in every organization.
    for row in table.rows:
        darray = row[table.headers.index("Darray")]
        total = row[table.headers.index("Total")]
        assert darray / total > 0.5
