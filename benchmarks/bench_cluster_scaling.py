"""Extension: multiprocessor scaling of register-file pressure.

The paper evaluates one processor of a parallel machine; this bench
builds the machine.  A fixed fine-grain workload is spread over 1-8 NSF
nodes: per-node thread pressure (and with it spill traffic) falls as
nodes are added, while makespan scales down — quantifying how much of
the NSF's advantage survives at different machine sizes.
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.runtime import Cluster

TASKS = 24
WORK = 24


def _run(num_nodes, make_regfile):
    cluster = Cluster(num_nodes, make_regfile, network_latency=100)
    node0 = cluster.node(0)
    parts = [node0.future(name=f"p{i}") for i in range(TASKS)]

    def mapper(act, index):
        regs = act.alloc_many(12)
        for k, r in enumerate(regs):
            act.let(r, index * 12 + k)
        total = regs[0]
        for v in range(WORK):
            act.add(total, total, regs[1 + v % 10])
            if v % 8 == 7:
                yield act.machine.remote()
        act.machine.put_reg(act, parts[index], total)

    def reducer(act):
        grand, part = act.alloc_many(["grand", "part"])
        act.let(grand, 0)
        for fut in parts:
            value = yield act.machine.wait(fut)
            act.let(part, value)
            act.add(grand, grand, part)
        return act.test(grand)

    cluster.spawn_round_robin(range(TASKS), mapper)
    reduce_thread = cluster.spawn_on(0, reducer)
    cluster.run()
    stats = cluster.stats_by_node()
    instructions = sum(s.instructions for s in stats)
    reloads = sum(s.registers_reloaded for s in stats)
    return (cluster.makespan(), reloads / max(1, instructions),
            reduce_thread.result.value)


def test_cluster_scaling(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Extension A",
            title="Register-file pressure vs machine size",
            headers=["Nodes", "NSF makespan", "NSF reloads/instr %",
                     "Segment reloads/instr %"],
        )
        reference = None
        for num_nodes in (1, 2, 4, 8):
            nsf_span, nsf_rate, nsf_value = _run(
                num_nodes,
                lambda i: NamedStateRegisterFile(num_registers=128,
                                                 context_size=32),
            )
            _, seg_rate, seg_value = _run(
                num_nodes,
                lambda i: SegmentedRegisterFile(num_registers=128,
                                                context_size=32),
            )
            assert nsf_value == seg_value
            reference = reference or nsf_value
            assert nsf_value == reference
            table.add_row(num_nodes, nsf_span,
                          round(100 * nsf_rate, 3),
                          round(100 * seg_rate, 3))
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "cluster_scaling")
    print()
    print(table.render())

    spans = table.column("NSF makespan")
    assert spans[-1] < spans[0]  # parallel speedup is real
    nsf_rates = table.column("NSF reloads/instr %")
    seg_rates = table.column("Segment reloads/instr %")
    # Pressure falls with machine size, and the NSF stays below the
    # segmented file at every size.
    assert nsf_rates[-1] <= nsf_rates[0]
    for nsf_rate, seg_rate in zip(nsf_rates, seg_rates):
        assert nsf_rate <= seg_rate
