"""Chaos-plane overhead gate: hardening must be free when disarmed.

PR 6 threads storage-fault hooks through the warm-cache sweep path —
the memo lookup now re-validates a stat signature, every write names
an injection site, and each hook tests ``chaos.ACTIVE``.  With the
plane disarmed (the default for every real sweep) all of that must
cost nothing measurable: this benchmark gates the warm-cache cell at
**<= 2% overhead** versus the structural floor, and reports (without
gating) the cost of an armed-but-empty plane.

* ``floor`` — model construction + replay of an already-in-memory
  trace: the work a warm cell cannot avoid, with the cache machinery
  bypassed entirely;
* ``warm``  — the real sweep path (:func:`run_workload`): cache memo
  hit (incl. the new stat re-validation) + replay, plane disarmed;
* ``armed`` — same, under an active plane with an exhausted/empty
  schedule (every hook takes its slow branch) — informational.

The measurement is min-of-N interleaved; a failing gate re-measures
once before failing, so a single background-load spike cannot flake
CI.

Usage::

    python benchmarks/bench_chaos_overhead.py          # report
    python benchmarks/bench_chaos_overhead.py --check  # CI gate
"""

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos import plane as plane_mod
from repro.evalx.common import make_nsf, run_workload
from repro.trace import cache as trace_cache
from repro.trace.replay import replay
from repro.workloads import get_workload

SCALE = 0.35
SEED = 11
REPEATS = 7
WORKLOAD = "GateSim"

#: the gate: warm-cache cell with the plane disarmed vs the floor
MAX_OVERHEAD_PCT = 2.0


def _best_times(fns, repeats=REPEATS):
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def measure():
    workload = get_workload(WORKLOAD)
    with tempfile.TemporaryDirectory(prefix="chaos-bench-") as tmp:
        saved_dir = os.environ.get(trace_cache.ENV_DIR)
        os.environ[trace_cache.ENV_DIR] = tmp
        try:
            # prime: record once so every measured iteration is warm
            trace = trace_cache.load_or_record(workload, scale=SCALE,
                                               seed=SEED)

            def floor():
                replay(trace, make_nsf(workload), verify=False)

            def warm():
                run_workload(workload, make_nsf(workload), scale=SCALE,
                             seed=SEED)

            empty_plane = plane_mod.FaultPlane(1, kinds=(), sites=())

            def armed():
                with plane_mod.activated(empty_plane):
                    run_workload(workload, make_nsf(workload),
                                 scale=SCALE, seed=SEED)

            floor_t, warm_t, armed_t = _best_times(
                [floor, warm, armed])
        finally:
            if saved_dir is None:
                os.environ.pop(trace_cache.ENV_DIR, None)
            else:
                os.environ[trace_cache.ENV_DIR] = saved_dir
    return {
        "workload": WORKLOAD,
        "floor_ms": round(floor_t * 1e3, 3),
        "warm_ms": round(warm_t * 1e3, 3),
        "armed_ms": round(armed_t * 1e3, 3),
        "overhead_pct": round((warm_t / floor_t - 1.0) * 100, 2),
        "armed_pct": round((armed_t / floor_t - 1.0) * 100, 2),
    }


def report(results, stream=sys.stdout):
    stream.write(
        f"chaos overhead ({results['workload']}, warm cell): "
        f"floor {results['floor_ms']:.3f} ms, "
        f"warm {results['warm_ms']:.3f} ms "
        f"({results['overhead_pct']:+.2f}%), "
        f"armed-empty {results['armed_ms']:.3f} ms "
        f"({results['armed_pct']:+.2f}%, not gated)\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate the disarmed fault plane's overhead on the "
                    "warm-cache sweep path.")
    parser.add_argument("--check", action="store_true",
                        help="fail if warm-cell overhead exceeds "
                             f"{MAX_OVERHEAD_PCT}%")
    args = parser.parse_args(argv)

    results = measure()
    report(results)
    if not args.check:
        return 0
    if results["overhead_pct"] > MAX_OVERHEAD_PCT:
        # one re-measure damps background-load flake before failing
        results = measure()
        report(results)
    if results["overhead_pct"] > MAX_OVERHEAD_PCT:
        print(f"chaos overhead gate FAILED: "
              f"{results['overhead_pct']:+.2f}% > "
              f"{MAX_OVERHEAD_PCT}% on the warm-cache cell",
              file=sys.stderr)
        return 1
    print(f"chaos overhead gate ok: {results['overhead_pct']:+.2f}% "
          f"<= {MAX_OVERHEAD_PCT}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
