"""Figure 8: register file area with two write and four read ports."""

from conftest import run_table
from repro.evalx import run_experiment


def test_fig08_area_six_ports(benchmark, record_table):
    table = run_table(benchmark, "fig08")
    record_table(table, "fig08")
    print()
    print(table.render())

    # Paper: +28% and +16% at six ports.
    ratio_128 = int(table.rows[1][-1].rstrip("%"))
    ratio_64 = int(table.rows[3][-1].rstrip("%"))
    assert 118 <= ratio_128 <= 140
    assert 108 <= ratio_64 <= 125

    # The NSF's relative cost must shrink as ports are added (§6.2).
    three_port = run_experiment("fig07")
    assert ratio_128 < int(three_port.rows[1][-1].rstrip("%"))
    assert ratio_64 < int(three_port.rows[3][-1].rstrip("%"))
