"""Figure 9: percentage of registers holding active data."""

from conftest import run_table


def test_fig09_utilization(benchmark, record_table):
    table = run_table(benchmark, "fig09")
    record_table(table, "fig09")
    print()
    print(table.render())

    nsf_avg = table.headers.index("NSF avg %")
    seg_avg = table.headers.index("Segment avg %")
    nsf_max = table.headers.index("NSF max %")
    for row in table.rows:
        # The NSF never holds less active data than the segmented file,
        # and max >= avg by construction.
        assert row[nsf_avg] >= row[seg_avg]
        assert row[nsf_max] >= row[nsf_avg]

    # Paper: 2-3x more active data for sequential code; at least one
    # sequential app must clear 2x and the best parallel apps 1.3x.
    seq_ratios = [r[-1] for r in table.rows if r[1] == "Sequential"]
    par_ratios = [r[-1] for r in table.rows if r[1] == "Parallel"]
    assert max(seq_ratios) >= 2.0
    assert max(par_ratios) >= 1.3
