"""Working-set profile: the §7.1.1 registers-per-activation claim."""

from conftest import run_table


def test_profile_registers_per_activation(benchmark, record_table):
    table = run_table(benchmark, "profile")
    record_table(table, "profile")
    print()
    print(table.render())

    avg_col = table.headers.index("Avg regs/context")
    seq = [r[avg_col] for r in table.rows if r[1] == "Sequential"]
    par = [r[avg_col] for r in table.rows if r[1] == "Parallel"]
    # Paper: sequential procedures ~8-10 registers (register-allocated),
    # parallel contexts ~18-22 (folded without lifetime analysis).  Our
    # implementations sit in the same regimes, with the parallel
    # contexts clearly fatter.
    assert 3 <= min(seq) and max(seq) <= 14
    assert max(par) >= 1.5 * (sum(seq) / len(seq))
    # Every context fits its architectural register set.
    max_col = table.headers.index("Max regs")
    for row in table.rows:
        limit = 20 if row[1] == "Sequential" else 32
        assert row[max_col] <= limit
