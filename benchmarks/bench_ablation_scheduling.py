"""Ablation: block multithreading vs eager (interleaved) switching.

Section 3 of the paper distinguishes processors that interleave threads
"on a cycle-by-cycle basis" (HEP, Monsoon, Tera) from block
multithreading (Sparcle, APRIL), and §7 measures the block regime.
This ablation approximates the interleaved end of the spectrum by
rotating threads at every synchronization point, not just at misses —
more context switches over the same work, which is precisely the
pressure the NSF absorbs and a segmented file does not.
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.evalx.tables import ExperimentTable
from repro.workloads import get_workload

SCALE = 0.5


def test_scheduling_ablation(benchmark, record_table):
    def sweep():
        table = ExperimentTable(
            experiment="Ablation D",
            title="Block vs eager-interleaved scheduling (Paraffins)",
            headers=["Scheduler", "Model", "Switches",
                     "Instr/switch", "Reloads/instr %"],
        )
        for eager, label in ((False, "block"), (True, "interleaved")):
            for model_cls in (NamedStateRegisterFile,
                              SegmentedRegisterFile):
                model = model_cls(num_registers=128, context_size=32)
                workload = get_workload("Paraffins")
                workload.run(model, scale=SCALE, seed=1,
                             eager_switch=eager)
                stats = model.stats
                table.add_row(
                    label,
                    model.kind,
                    stats.context_switches,
                    round(stats.instructions_per_switch, 1),
                    round(100 * stats.reloads_per_instruction, 3),
                )
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_table(table, "ablation_scheduling")
    print()
    print(table.render())

    def cell(scheduler, model, header):
        index = table.headers.index(header)
        for row in table.rows:
            if row[0] == scheduler and row[1] == model:
                return row[index]
        raise KeyError((scheduler, model))

    # Interleaving switches more over the same program.
    assert (cell("interleaved", "nsf", "Switches")
            > cell("block", "nsf", "Switches"))
    # The segmented file's traffic grows with the switch rate; the NSF
    # only reloads what each thread actually touches, so the scheduler
    # barely moves its traffic.
    seg_growth = (cell("interleaved", "segmented", "Reloads/instr %")
                  - cell("block", "segmented", "Reloads/instr %"))
    nsf_growth = (cell("interleaved", "nsf", "Reloads/instr %")
                  - cell("block", "nsf", "Reloads/instr %"))
    assert seg_growth > nsf_growth
