"""Hardware multithreading at the ISA level (§3 of the paper).

Compiles a mix of programs, loads them into the hardware thread slots
of one processor, and runs the same mix over an NSF and a segmented
register file.  The scheduler switches threads whenever the register
file stalls — so the segmented processor rotates constantly, paying a
frame of traffic every time, while the NSF interleaves nearly free.

Also shows forced fine-grain interleaving (a 20-instruction quantum):
the NSF's cycles barely move, the segmented file's explode.

Run:  python examples/hardware_multithreading.py
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.cpu import MultithreadedCPU
from repro.lang import compile_source

WORK = """
func fib(n) {{
    if (n < 2) {{ return n; }}
    return fib(n - 1) + fib(n - 2);
}}
func poly(x) {{
    return ((x * 3 + 1) * x + 4) * x + 7;
}}
func main() {{ return fib({n}) + poly({n}); }}
"""

THREAD_NS = (7, 8, 9, 10, 11, 7, 8, 9)


def run(model_factory, quantum=None):
    programs = [compile_source(WORK.format(n=n)).program
                for n in THREAD_NS]
    regfile = model_factory()
    cpu = MultithreadedCPU(programs, regfile, quantum=quantum)
    result = cpu.run()
    return result, regfile


def expected():
    def fib(n):
        return n if n < 2 else fib(n - 1) + fib(n - 2)

    def poly(x):
        return ((x * 3 + 1) * x + 4) * x + 7

    return [fib(n) + poly(n) for n in THREAD_NS]


def main():
    answers = expected()
    print(f"{len(THREAD_NS)} hardware threads, shared 80-register file\n")
    print(f"{'configuration':34s} {'cycles':>9s} {'switches':>9s} "
          f"{'reloads':>8s}")
    for label, factory, quantum in (
        ("NSF, switch on stall", lambda: NamedStateRegisterFile(
            num_registers=80, context_size=20), None),
        ("Segmented, switch on stall", lambda: SegmentedRegisterFile(
            num_registers=80, context_size=20), None),
        ("NSF, 20-instruction quantum", lambda: NamedStateRegisterFile(
            num_registers=80, context_size=20), 20),
        ("Segmented, 20-instr quantum", lambda: SegmentedRegisterFile(
            num_registers=80, context_size=20), 20),
    ):
        result, regfile = run(factory, quantum)
        assert result.return_values == answers, "wrong results!"
        print(f"{label:34s} {result.cycles:9,d} "
              f"{result.thread_switches:9,d} "
              f"{regfile.stats.registers_reloaded:8,d}")
    print("\nSame programs, same answers; only the register file "
          "changes the machine.")


if __name__ == "__main__":
    main()
