"""Explore the chip-level models: access time and area (Figs 6-8).

Sweeps file shapes and port counts to show the design-space trends the
paper reports: the NSF pays a ~5% access-time penalty (all in the CAM
decode) and a shrinking area premium as ports are added.

Run:  python examples/hw_models.py
"""

from repro.hw import (
    RegisterFileGeometry,
    access_time_penalty,
    area_ratio,
    estimate_access_time,
    estimate_area,
    processor_area_increase,
)


def geometry(org, rows, bits, line, rd=2, wr=1):
    return RegisterFileGeometry(organization=org, rows=rows,
                                bits_per_row=bits, line_size=line,
                                read_ports=rd, write_ports=wr)


def access_time_table():
    print("== access time (ns), 1.2um CMOS ==")
    for rows, bits, line in ((128, 32, 1), (64, 64, 2), (256, 32, 1)):
        seg = geometry("segmented", rows, bits, line)
        nsf = geometry("nsf", rows, bits, line)
        ts = estimate_access_time(seg)
        tn = estimate_access_time(nsf)
        penalty = access_time_penalty(nsf, seg)
        print(f"  {bits}b x {rows:3d}: segment {ts.total:5.2f}  "
              f"nsf {tn.total:5.2f}  (+{100 * penalty:.1f}%, "
              f"decode {ts.decode:.2f} -> {tn.decode:.2f})")
    print()


def area_vs_ports():
    print("== NSF area premium vs ports (32b x 128 rows) ==")
    for rd, wr in ((1, 1), (2, 1), (3, 2), (4, 2), (6, 3)):
        seg = geometry("segmented", 128, 32, 1, rd, wr)
        nsf = geometry("nsf", 128, 32, 1, rd, wr)
        ratio = area_ratio(nsf, seg)
        chip = processor_area_increase(nsf, seg)
        print(f"  {rd}R{wr}W: NSF is {100 * (ratio - 1):5.1f}% larger "
              f"-> +{100 * chip:.1f}% of a whole processor")
    print()


def breakdown():
    print("== area breakdown, 3-ported 32b x 128 (1e6 um^2) ==")
    for org in ("segmented", "nsf"):
        report = estimate_area(geometry(org, 128, 32, 1))
        b = report.breakdown()
        print(f"  {org:10s} decode={b['decode'] / 1e6:5.2f} "
              f"logic={b['logic'] / 1e6:5.2f} "
              f"darray={b['darray'] / 1e6:5.2f} "
              f"total={b['total'] / 1e6:5.2f}")
    print("\nThe data array is shared; the CAM decoder and valid-bit")
    print("logic are the NSF's whole premium — and they do not grow")
    print("with ports, which is why the premium shrinks (Figure 8).")


if __name__ == "__main__":
    access_time_table()
    area_vs_ports()
    breakdown()
