"""Record once, replay everywhere: trace-driven design-space sweeps.

The paper's methodology: capture a program's register-reference trace,
then evaluate many register-file organizations against it.  This
example records one GateSim execution and replays it across a grid of
NSF sizes and line sizes plus segmented baselines — every replay is
value-verified, so the whole sweep is functionally checked.

Run:  python examples/trace_sweep.py
"""

import time

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.trace import TracingRegisterFile, replay
from repro.workloads import get_workload


def main():
    workload = get_workload("GateSim")
    tracer = TracingRegisterFile(
        NamedStateRegisterFile(num_registers=80, context_size=20)
    )
    start = time.time()
    result = workload.run(tracer, scale=1.0)
    record_seconds = time.time() - start
    trace = tracer.trace
    print(f"recorded {len(trace):,} events "
          f"({trace.instructions():,} instructions) "
          f"in {record_seconds:.2f}s — verified={result.verified}\n")

    configurations = []
    for registers in (40, 80, 160):
        for line_size in (1, 2, 4):
            configurations.append(
                (f"NSF {registers}r line={line_size}",
                 NamedStateRegisterFile(num_registers=registers,
                                        context_size=20,
                                        line_size=line_size))
            )
    for registers in (40, 80, 160):
        configurations.append(
            (f"Segmented {registers}r ({registers // 20} frames)",
             SegmentedRegisterFile(num_registers=registers,
                                   context_size=20))
        )

    print(f"{'configuration':28s} {'reloads/instr':>13s} "
          f"{'utilization':>11s}")
    start = time.time()
    for label, model in configurations:
        replay(trace, model)  # verifies every read against the trace
        stats = model.stats
        print(f"{label:28s} {stats.reloads_per_instruction:13.5%} "
              f"{stats.utilization_avg:11.1%}")
    sweep_seconds = time.time() - start
    print(f"\nswept {len(configurations)} configurations in "
          f"{sweep_seconds:.2f}s from one recorded execution")


if __name__ == "__main__":
    main()
