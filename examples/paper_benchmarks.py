"""Run the paper's Table-1 benchmarks and print a Figure-10-style view.

Each of the nine benchmarks is a real program whose every local access
goes through the register-file model under test; outputs are verified
against plain-Python references, so the numbers below come from
functionally correct simulations.

Run:  python examples/paper_benchmarks.py [scale]
"""

import sys

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.workloads import ALL_WORKLOADS


def main(scale=0.6):
    header = (f"{'benchmark':10s} {'type':10s} {'instr':>8s} "
              f"{'i/switch':>8s} {'NSF rel%':>9s} {'Seg rel%':>9s} "
              f"{'NSF util':>8s} {'Seg util':>8s}")
    print(header)
    print("-" * len(header))
    for workload_cls in ALL_WORKLOADS:
        workload = workload_cls()
        registers = 80 if workload.kind == "sequential" else 128
        nsf = NamedStateRegisterFile(num_registers=registers,
                                     context_size=workload.context_size)
        seg = SegmentedRegisterFile(num_registers=registers,
                                    context_size=workload.context_size)
        result = workload.run(nsf, scale=scale)
        workload.run(seg, scale=scale)
        assert result.verified
        n, s = nsf.stats, seg.stats
        print(f"{workload.name:10s} {workload.kind:10s} "
              f"{n.instructions:8d} {n.instructions_per_switch:8.1f} "
              f"{100 * n.reloads_per_instruction:9.4f} "
              f"{100 * s.reloads_per_instruction:9.4f} "
              f"{n.utilization_avg:8.0%} {s.utilization_avg:8.0%}")
    print("\nEvery row verified against a plain-Python reference.")
    print("Compare with Figures 9 and 10 of the paper: the NSF holds")
    print("more active data and reloads orders of magnitude less.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.6)
