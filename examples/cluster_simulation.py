"""Simulate a small multiprocessor of NSF nodes.

Spreads a fine-grain map/reduce over 1, 2, 4 and 8 processors, each
with its own Named-State Register File: more nodes means fewer
concurrent threads per register file, so the per-node reload traffic
falls while the interconnect carries more messages — the machine-level
context (§2) the NSF was designed for.

Run:  python examples/cluster_simulation.py
"""

from repro.core import NamedStateRegisterFile
from repro.runtime import Cluster

TASKS = 32
WORK = 40


def run_cluster(num_nodes):
    cluster = Cluster(
        num_nodes,
        lambda i: NamedStateRegisterFile(num_registers=128,
                                         context_size=32),
        network_latency=100,
    )
    node0 = cluster.node(0)
    parts = [node0.future(name=f"part{i}") for i in range(TASKS)]

    def mapper(act, index):
        # A TAM-style frame: a dozen live locals per thread, so a
        # single node cannot keep every thread's registers resident.
        (idx, total, i, square, lo, hi, stride, bias, probe, carry,
         checkpoints, scratch) = act.alloc_many(
            ["idx", "total", "i", "square", "lo", "hi", "stride",
             "bias", "probe", "carry", "checkpoints", "scratch"]
        )
        act.let(idx, index)
        act.let(total, 0)
        act.let(lo, index * WORK)
        act.let(hi, (index + 1) * WORK)
        act.let(stride, 1)
        act.let(bias, index & 7)
        act.let(carry, 0)
        act.let(checkpoints, 0)
        for v in range(WORK):
            act.let(i, index * WORK + v)
            act.mul(square, i, i)
            act.add(total, total, square)
            act.bxor(probe, i, bias)
            act.add(carry, carry, stride)
            if v % 10 == 9:
                act.addi(checkpoints, checkpoints, 1)
                act.mov(scratch, total)
                yield act.machine.remote()  # fetch next input block
        act.machine.put_reg(act, parts[index], total)

    def reducer(act):
        grand, part = act.alloc_many(["grand", "part"])
        act.let(grand, 0)
        for fut in parts:
            value = yield act.machine.wait(fut)
            act.let(part, value)
            act.add(grand, grand, part)
        return act.test(grand)

    cluster.spawn_round_robin(range(TASKS), mapper, offset=1 % num_nodes)
    reduce_thread = cluster.spawn_on(0, reducer)
    cluster.run()
    return cluster, reduce_thread.result.value


def main():
    expected = sum(i * i for i in range(TASKS * WORK))
    print(f"map/reduce of {TASKS} tasks x {WORK} items "
          f"(expected {expected})\n")
    print(f"{'nodes':>5s} {'makespan':>9s} {'messages':>9s} "
          f"{'reloads/instr per node':>23s}")
    for num_nodes in (1, 2, 4, 8):
        cluster, value = run_cluster(num_nodes)
        assert value == expected, "cluster corrupted the reduction!"
        stats = cluster.stats_by_node()
        rates = [s.reloads_per_instruction for s in stats if s.instructions]
        avg_rate = sum(rates) / len(rates)
        print(f"{num_nodes:5d} {cluster.makespan():9,d} "
              f"{cluster.total_messages():9d} {avg_rate:23.4%}")
    print("\nMore processors -> fewer resident threads per register "
          "file -> less spill traffic per node.")


if __name__ == "__main__":
    main()
