"""Compile a mini-C program and execute it on the NSF machine.

The full substrate path: source → Chaitin-Briggs register allocation →
NSF ISA assembly → cycle-level CPU with a pluggable register file.
Every `call` allocates a fresh Context ID (the paper's sequential
model); register windows mean the generated code contains *no*
save/restore sequences at all.

Run:  python examples/compile_and_run.py
"""

from repro.core import NamedStateRegisterFile, SegmentedRegisterFile
from repro.cpu import CPU
from repro.lang import compile_source

SOURCE = """
// Ackermann's function: brutal call-chain depth for a register file.
func ack(m, n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}

// Knapsack over a tiny item table in heap memory.
func knapsack(weights, values, n, cap) {
    if (n == 0) { return 0; }
    var skip = knapsack(weights, values, n - 1, cap);
    var w = mem[weights + n - 1];
    if (w > cap) { return skip; }
    var take = values + n - 1;
    take = mem[take] + knapsack(weights, values, n - 1, cap - w);
    if (take > skip) { return take; }
    return skip;
}

func main() {
    var weights = alloc(5);
    var values = alloc(5);
    mem[weights + 0] = 2;  mem[values + 0] = 3;
    mem[weights + 1] = 3;  mem[values + 1] = 4;
    mem[weights + 2] = 4;  mem[values + 2] = 5;
    mem[weights + 3] = 5;  mem[values + 3] = 8;
    mem[weights + 4] = 9;  mem[values + 4] = 10;
    var best = knapsack(weights, values, 5, 10);
    return ack(2, 3) * 1000 + best;
}
"""


def main():
    compiled = compile_source(SOURCE)
    print("== allocation summary ==")
    for name, info in compiled.functions.items():
        print(f"  {name:10s} registers={info.registers_used:2d} "
              f"spill_slots={info.spill_slots} frame={info.frame_words} "
              f"rounds={info.allocator_rounds}")
    lines = compiled.assembly.count("\n")
    print(f"\ngenerated {lines} lines of assembly; first 12:\n")
    for line in compiled.assembly.splitlines()[:12]:
        print(f"    {line}")

    print("\n== execution (ack(2,3)=9, knapsack best=15 -> 9015) ==")
    for make in (
        lambda: NamedStateRegisterFile(num_registers=80, context_size=20),
        lambda: SegmentedRegisterFile(num_registers=80, context_size=20),
    ):
        regfile = make()
        cpu = CPU(compiled.program, regfile)
        result = cpu.run()
        stats = regfile.stats
        print(f"{regfile.kind:10s} result={result.return_value} "
              f"instr={result.instructions:6d} cycles={result.cycles:6d} "
              f"reloads={stats.registers_reloaded:5d} "
              f"contexts={stats.contexts_created:5d}")
    print("\nsame answer; the NSF executed fewer cycles because deep "
          "recursion never spilled.")


if __name__ == "__main__":
    main()
