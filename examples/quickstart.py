"""Quickstart: the Named-State Register File in five minutes.

Creates a tiny NSF and a segmented file, walks through context
creation, writes, demand reloads and explicit deallocation, then shows
the headline effect: switching among more contexts than the file has
frames costs a segmented file whole-frame traffic and the NSF almost
nothing.

Run:  python examples/quickstart.py
"""

from repro import NamedStateRegisterFile, SegmentedRegisterFile


def basics():
    print("== NSF basics ==")
    nsf = NamedStateRegisterFile(num_registers=16, context_size=8,
                                 line_size=1)
    a = nsf.begin_context()
    b = nsf.begin_context()

    nsf.switch_to(a)
    nsf.write(0, 42)            # first write allocates r0 of context a
    nsf.write(1, 43)
    nsf.switch_to(b)            # a context switch moves NO registers
    nsf.write(0, 99)

    value, access = nsf.read(0)
    print(f"context {b}: r0 = {value} (hit={access.hit})")

    nsf.switch_to(a)
    value, access = nsf.read(0)
    print(f"context {a}: r0 = {value} (hit={access.hit})")

    # Registers can be deallocated explicitly (the paper's `rfree`).
    nsf.free_register(1)
    print(f"active registers now: {nsf.active_register_count()}")
    print(f"resident contexts:    {nsf.resident_context_ids()}")
    nsf.end_context(a)
    nsf.end_context(b)
    print()


def demand_reload():
    print("== Demand spill/reload ==")
    # A 4-register NSF holding two 8-register contexts must migrate
    # registers through the backing store — values always survive.
    nsf = NamedStateRegisterFile(num_registers=4, context_size=8)
    a = nsf.begin_context()
    b = nsf.begin_context()
    nsf.switch_to(a)
    for i in range(4):
        nsf.write(i, i * 10)
    nsf.switch_to(b)
    for i in range(4):
        nsf.write(i, i * 100)   # evicts a's registers one by one
    nsf.switch_to(a)
    values = [nsf.read(i)[0] for i in range(4)]  # demand reloads
    print(f"context {a} after round trip: {values}")
    stats = nsf.stats
    print(f"registers spilled:  {stats.registers_spilled}")
    print(f"registers reloaded: {stats.registers_reloaded}")
    print()


def nsf_vs_segmented():
    print("== NSF vs segmented file: 8 contexts, room for 4 frames ==")
    results = {}
    for make in (
        lambda: NamedStateRegisterFile(num_registers=32, context_size=8),
        lambda: SegmentedRegisterFile(num_registers=32, context_size=8),
    ):
        model = make()
        contexts = [model.begin_context() for _ in range(8)]
        # Round-robin over twice as many contexts as frames; each turn
        # touches three registers.
        for round_number in range(12):
            for cid in contexts:
                model.switch_to(cid)
                for i in range(3):
                    model.write(i, round_number * 100 + i, cid=cid)
                    model.read(i, cid=cid)
                model.tick(6)
        stats = model.stats
        results[model.kind] = stats
        print(f"{model.kind:10s} reloads={stats.registers_reloaded:5d} "
              f"spills={stats.registers_spilled:5d} "
              f"avg utilization={stats.utilization_avg:.0%}")
    ratio = (results['segmented'].registers_reloaded
             / max(1, results['nsf'].registers_reloaded))
    print(f"-> the segmented file reloads {ratio:.0f}x more registers")


if __name__ == "__main__":
    basics()
    demand_reload()
    nsf_vs_segmented()
