"""A fine-grain multithreaded pipeline over the NSF.

Builds the scenario from §2 of the paper: a processor masking remote
access latency by switching among many fine-grain threads.  A pipeline
of producer → transform → reducer threads communicates through
write-once futures; every stage stalls on remote accesses, so the
scheduler interleaves dozens of contexts.

The same workload runs over the NSF and a segmented register file; the
output must be identical, while the traffic is wildly different.

Run:  python examples/multithreaded_pipeline.py
"""

from repro import NamedStateRegisterFile, SegmentedRegisterFile
from repro.runtime import ThreadMachine

STAGES = 3
ITEMS = 24


def build_pipeline(machine):
    """Spawn ITEMS pipelines of STAGES threads each; returns outputs."""

    def producer(act, fut, seed_value):
        value, scratch, bias = act.alloc_many(["value", "scratch", "bias"])
        act.let(value, seed_value)
        act.muli(value, value, 7)
        act.let(bias, 3)
        act.add(value, value, bias)
        yield machine.remote()          # fetch the input remotely
        machine.put_reg(act, fut, value)

    def transform(act, upstream, fut, stage):
        incoming = yield machine.wait(upstream)
        value, stage_reg, tmp = act.alloc_many(["value", "stage", "tmp"])
        act.let(value, incoming)
        act.let(stage_reg, stage)
        act.mul(tmp, value, stage_reg)
        act.add(value, value, tmp)      # value *= (1 + stage)
        yield machine.remote()          # lookup table on another node
        machine.put_reg(act, fut, value)

    def reducer(act, upstream, fut):
        incoming = yield machine.wait(upstream)
        value, = act.args(incoming)
        act.op(value, lambda v: v % 1009, value)
        machine.put_reg(act, fut, value)

    outputs = []
    for item in range(ITEMS):
        first = machine.future(name=f"in{item}")
        machine.spawn(producer, first, item)
        upstream = first
        for stage in range(1, STAGES + 1):
            nxt = machine.future(name=f"s{stage}-{item}")
            machine.spawn(transform, upstream, nxt, stage)
            upstream = nxt
        final = machine.future(name=f"out{item}")
        machine.spawn(reducer, upstream, final)
        outputs.append(final)
    return outputs


def reference():
    out = []
    for item in range(ITEMS):
        value = item * 7 + 3
        for stage in range(1, STAGES + 1):
            value += value * stage
        out.append(value % 1009)
    return out


def main():
    expected = reference()
    print(f"{ITEMS} pipelines x {STAGES + 2} threads, "
          f"remote latency 100 cycles\n")
    for make in (
        lambda: NamedStateRegisterFile(num_registers=128, context_size=32),
        lambda: SegmentedRegisterFile(num_registers=128, context_size=32),
    ):
        regfile = make()
        machine = ThreadMachine(regfile, remote_latency=100)
        outputs = build_pipeline(machine)
        machine.run()
        values = [f.value for f in outputs]
        assert values == expected, "register file corrupted the pipeline!"
        stats = regfile.stats
        print(f"{regfile.kind:10s} threads={machine.threads_spawned:3d} "
              f"instr={stats.instructions:6d} "
              f"switches={stats.context_switches:5d} "
              f"reloads={stats.registers_reloaded:6d} "
              f"idle={machine.idle_cycles:6d} cycles")
    print("\nidentical outputs; the segmented file paid frame-sized "
          "reloads for every switch miss.")


if __name__ == "__main__":
    main()
