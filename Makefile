# Developer conveniences for the NSF reproduction.

PYTHON ?= python3

.PHONY: install test faults compression resume-smoke bench eval charts goldens check-goldens examples all

install:
	pip install -e . --no-build-isolation

test: faults
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Fault-injection campaign: asserts zero silent corruption with
# ECC/parity protection on (and that faults corrupt silently without it).
faults:
	PYTHONPATH=src $(PYTHON) -c "from repro.evalx.resilience import main; raise SystemExit(main(['--check']))"

# Spill-path compression sweep: golden check plus the traffic-reduction
# contract (some codec beats raw on every workload x granularity).
compression:
	PYTHONPATH=src $(PYTHON) -c "from repro.evalx.compression import main; raise SystemExit(main(['--check']))"

# Kill-and-resume chaos test: SIGKILLs a live sweep at random cell
# boundaries, resumes from the journal, and requires the final output
# to be byte-identical to an uninterrupted run.
resume-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.evalx.runner smoke --experiment compression --scale 0.2 --kills 3

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

eval:
	PYTHONPATH=src $(PYTHON) -m repro.evalx

charts:
	PYTHONPATH=src $(PYTHON) -m repro.evalx --experiment fig12 --charts
	PYTHONPATH=src $(PYTHON) -m repro.evalx --experiment fig13 --charts

goldens:
	PYTHONPATH=src $(PYTHON) -m repro.evalx --write-goldens

check-goldens:
	PYTHONPATH=src $(PYTHON) -m repro.evalx --check-goldens

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		PYTHONPATH=src $(PYTHON) $$f > /dev/null || exit 1; \
	done; echo "all examples ran clean"

all: test bench check-goldens examples
