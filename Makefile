# Developer conveniences for the NSF reproduction.

PYTHON ?= python3

.PHONY: install test faults bench eval charts goldens check-goldens examples all

install:
	pip install -e . --no-build-isolation

test: faults
	$(PYTHON) -m pytest tests/

# Fault-injection campaign: asserts zero silent corruption with
# ECC/parity protection on (and that faults corrupt silently without it).
faults:
	PYTHONPATH=src $(PYTHON) -c "from repro.evalx.resilience import main; raise SystemExit(main(['--check']))"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

eval:
	$(PYTHON) -m repro.evalx

charts:
	$(PYTHON) -m repro.evalx --experiment fig12 --charts
	$(PYTHON) -m repro.evalx --experiment fig13 --charts

goldens:
	$(PYTHON) -m repro.evalx --write-goldens

check-goldens:
	$(PYTHON) -m repro.evalx --check-goldens

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		$(PYTHON) $$f > /dev/null || exit 1; \
	done; echo "all examples ran clean"

all: test bench check-goldens examples
