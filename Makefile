# Developer conveniences for the NSF reproduction.

PYTHON ?= python3

.PHONY: install test faults chaos compression resume-smoke farm-smoke bench bench-check bench-baseline eval charts goldens check-goldens clean-traces examples all

# Parallel cell workers for the sweep runner (1 = sequential).
JOBS ?= 4

install:
	pip install -e . --no-build-isolation

test: faults chaos
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Fault-injection campaign: asserts zero silent corruption with
# ECC/parity protection on (and that faults corrupt silently without it).
faults:
	PYTHONPATH=src $(PYTHON) -c "from repro.evalx.resilience import main; raise SystemExit(main(['--check']))"

# Storage-fault chaos campaign: injects torn renames, truncated writes,
# bit flips, ENOSPC/EIO and stale locks into the trace cache, journal
# and results writes, and asserts every completed operation is
# byte-identical to a fault-free run.
chaos:
	PYTHONPATH=src $(PYTHON) -c "from repro.evalx.chaos import main; raise SystemExit(main(['--check']))"

# Spill-path compression sweep: golden check plus the traffic-reduction
# contract (some codec beats raw on every workload x granularity).
compression:
	PYTHONPATH=src $(PYTHON) -c "from repro.evalx.compression import main; raise SystemExit(main(['--check']))"

# Kill-and-resume chaos test: SIGKILLs a live sweep at random cell
# boundaries, resumes from the journal, and requires the final output
# to be byte-identical to an uninterrupted run.  Runs under the
# parallel scheduler so crash recovery is exercised with JOBS workers,
# and with the storage fault plane armed (--chaos-seed) so the resumed
# sweep also survives injected torn writes, EIO and worker crashes.
# The farm half then SIGKILLs a farm *worker* (pid lifted from its
# lease file) and the farm *supervisor* mid-sweep and requires the
# resumed farm output to match the sequential sweep byte for byte.
resume-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.evalx.runner smoke --experiment compression --scale 0.2 --kills 3 --jobs $(JOBS) --chaos-seed 5
	PYTHONPATH=src $(PYTHON) -m repro.farm smoke --scenarios external-kill --jobs $(JOBS)

# Service-grade chaos campaign for the sweep farm: worker self-kills,
# supervisor kills, heartbeat stalls, planted stale leases and external
# SIGKILLs, each compared byte-for-byte against an uninterrupted
# sequential sweep, plus a golden check at the pinned operating point.
farm-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.farm smoke --check --jobs $(JOBS)

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Perf-regression gate: fast-path speedup ratios vs BENCH_baseline.json.
# Gates on machine-independent ratios (fast vs legacy on the same box),
# so it is safe to run in CI.
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hot_path.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_trace_replay.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos_overhead.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_farm.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_columnar.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_oracle_grid.py --check
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_core_ops.py --benchmark-only -q

# Refresh the committed baseline after an intentional perf change.
bench-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hot_path.py --write-baseline
	PYTHONPATH=src $(PYTHON) benchmarks/bench_trace_replay.py --write-baseline
	PYTHONPATH=src $(PYTHON) benchmarks/bench_farm.py --write-baseline
	PYTHONPATH=src $(PYTHON) benchmarks/bench_columnar.py --write-baseline
	PYTHONPATH=src $(PYTHON) benchmarks/bench_oracle_grid.py --write-baseline

eval:
	PYTHONPATH=src $(PYTHON) -m repro.evalx

charts:
	PYTHONPATH=src $(PYTHON) -m repro.evalx --experiment fig12 --charts
	PYTHONPATH=src $(PYTHON) -m repro.evalx --experiment fig13 --charts

goldens:
	PYTHONPATH=src $(PYTHON) -m repro.evalx --write-goldens

check-goldens:
	PYTHONPATH=src $(PYTHON) -m repro.evalx --check-goldens

# Drop every cached workload trace (they are re-recorded on demand).
clean-traces:
	PYTHONPATH=src $(PYTHON) -m repro.trace.cache clear

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		PYTHONPATH=src $(PYTHON) $$f > /dev/null || exit 1; \
	done; echo "all examples ran clean"

all: test bench check-goldens examples
